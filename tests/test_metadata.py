"""Citus metadata tests: table distribution, co-location, shard layout,
reference tables, validation, metadata sync."""

import pytest

from repro.engine.datum import hash_value
from repro.errors import MetadataError
from repro.citus.metadata import INT32_MAX, INT32_MIN, split_hash_ranges


class TestSplitHashRanges:
    def test_full_coverage_no_gaps(self):
        for count in (1, 2, 7, 32):
            ranges = split_hash_ranges(count)
            assert ranges[0][0] == INT32_MIN
            assert ranges[-1][1] == INT32_MAX
            for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
                assert lo2 == hi1 + 1

    def test_invalid_count(self):
        with pytest.raises(MetadataError):
            split_hash_ranges(0)


class TestCreateDistributedTable:
    def test_creates_shards_and_metadata(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE d (k int PRIMARY KEY, v text)")
        s.execute("SELECT create_distributed_table('d', 'k')")
        ext = citus.coordinator_ext
        dist = ext.metadata.cache.get_table("d")
        assert dist.shard_count == 8
        assert dist.dist_column == "k"
        # Physical shard tables exist on the placement nodes.
        for shard in dist.shards:
            node = ext.metadata.cache.placement_node(shard.shardid)
            assert citus.cluster.node(node).catalog.has_table(shard.shard_name)

    def test_metadata_tables_queryable_by_sql(self, citus_session):
        s = citus_session
        s.execute("CREATE TABLE d (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('d', 'k')")
        assert s.execute(
            "SELECT partmethod FROM pg_dist_partition WHERE logicalrelid = 'd'"
        ).scalar() == "h"
        assert s.execute(
            "SELECT count(*) FROM pg_dist_shard WHERE logicalrelid = 'd'"
        ).scalar() == 8

    def test_shard_ids_start_like_real_citus(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE d (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('d', 'k')")
        dist = citus.coordinator_ext.metadata.cache.get_table("d")
        assert dist.shards[0].shardid >= 102008

    def test_round_robin_placement(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE d (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('d', 'k')")
        placements = citus.coordinator_ext.metadata.cache.placements
        from collections import Counter

        counts = Counter(placements.values())
        assert counts["worker1"] == 4 and counts["worker2"] == 4

    def test_existing_rows_move_to_shards(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE d (k int PRIMARY KEY, v int)")
        s.execute("INSERT INTO d VALUES (1, 10), (2, 20), (3, 30)")
        s.execute("SELECT create_distributed_table('d', 'k')")
        assert s.execute("SELECT count(*) FROM d").scalar() == 3
        # Shell heap is empty; data lives in shards.
        shell = citus.coordinator.catalog.get_table("d")
        assert len(shell.heap.tuples) == 0

    def test_already_distributed_rejected(self, citus_session):
        s = citus_session
        s.execute("CREATE TABLE d (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('d', 'k')")
        with pytest.raises(MetadataError):
            s.execute("SELECT create_distributed_table('d', 'k')")

    def test_unique_constraint_must_include_dist_column(self, citus_session):
        s = citus_session
        s.execute("CREATE TABLE d (k int, other int PRIMARY KEY)")
        with pytest.raises(MetadataError):
            s.execute("SELECT create_distributed_table('d', 'k')")

    def test_jsonb_distribution_column_rejected(self, citus_session):
        s = citus_session
        s.execute("CREATE TABLE d (j jsonb)")
        with pytest.raises(MetadataError):
            s.execute("SELECT create_distributed_table('d', 'j')")

    def test_custom_shard_count(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE d (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('d', 'k', shard_count := 4)")
        assert citus.coordinator_ext.metadata.cache.get_table("d").shard_count == 4


class TestColocation:
    def test_explicit_colocation_shares_group(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE a (k int PRIMARY KEY)")
        s.execute("CREATE TABLE b (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('a', 'k')")
        s.execute("SELECT create_distributed_table('b', 'k', colocate_with := 'a')")
        cache = citus.coordinator_ext.metadata.cache
        assert cache.get_table("a").colocation_id == cache.get_table("b").colocation_id

    def test_colocated_shards_on_same_nodes(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE a (k int PRIMARY KEY)")
        s.execute("CREATE TABLE b (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('a', 'k')")
        s.execute("SELECT create_distributed_table('b', 'k', colocate_with := 'a')")
        cache = citus.coordinator_ext.metadata.cache
        a, b = cache.get_table("a"), cache.get_table("b")
        for sa, sb in zip(a.shards, b.shards):
            assert (sa.min_value, sa.max_value) == (sb.min_value, sb.max_value)
            assert cache.placement_node(sa.shardid) == cache.placement_node(sb.shardid)

    def test_implicit_colocation_by_type(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE a (k int PRIMARY KEY)")
        s.execute("CREATE TABLE b (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('a', 'k')")
        s.execute("SELECT create_distributed_table('b', 'k')")
        cache = citus.coordinator_ext.metadata.cache
        assert cache.get_table("a").colocation_id == cache.get_table("b").colocation_id

    def test_different_types_not_implicitly_colocated(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE a (k int PRIMARY KEY)")
        s.execute("CREATE TABLE b (k text PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('a', 'k')")
        s.execute("SELECT create_distributed_table('b', 'k')")
        cache = citus.coordinator_ext.metadata.cache
        assert cache.get_table("a").colocation_id != cache.get_table("b").colocation_id

    def test_colocate_with_type_mismatch_rejected(self, citus_session):
        s = citus_session
        s.execute("CREATE TABLE a (k int PRIMARY KEY)")
        s.execute("CREATE TABLE b (k text PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('a', 'k')")
        with pytest.raises(MetadataError):
            s.execute("SELECT create_distributed_table('b', 'k', colocate_with := 'a')")

    def test_colocate_none_makes_new_group(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE a (k int PRIMARY KEY)")
        s.execute("CREATE TABLE b (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('a', 'k')")
        s.execute("SELECT create_distributed_table('b', 'k', colocate_with := 'none')")
        cache = citus.coordinator_ext.metadata.cache
        assert cache.get_table("a").colocation_id != cache.get_table("b").colocation_id


class TestReferenceTables:
    def test_replica_on_every_node_and_coordinator(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE r (id int PRIMARY KEY, v text)")
        s.execute("SELECT create_reference_table('r')")
        ext = citus.coordinator_ext
        dist = ext.metadata.cache.get_table("r")
        assert dist.is_reference and dist.shard_count == 1
        shard_name = dist.shards[0].shard_name
        for node in ["coordinator", "worker1", "worker2"]:
            assert citus.cluster.node(node).catalog.has_table(shard_name)

    def test_write_replicates_everywhere(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE r (id int PRIMARY KEY, v text)")
        s.execute("SELECT create_reference_table('r')")
        s.execute("INSERT INTO r VALUES (1, 'x')")
        dist = citus.coordinator_ext.metadata.cache.get_table("r")
        shard_name = dist.shards[0].shard_name
        for node in ["coordinator", "worker1", "worker2"]:
            inst = citus.cluster.node(node)
            check = inst.connect()
            assert check.execute(f"SELECT count(*) FROM {shard_name}").scalar() == 1
            check.close()

    def test_read_answered_locally(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE r (id int PRIMARY KEY, v text)")
        s.execute("SELECT create_reference_table('r')")
        s.execute("INSERT INTO r VALUES (1, 'x')")
        before = citus.cluster.network.messages_sent
        assert s.execute("SELECT v FROM r WHERE id = 1").scalar() == "x"
        # No worker round trip: local replica answered.
        assert citus.cluster.network.messages_sent == before

    def test_update_reference_table(self, citus_session):
        s = citus_session
        s.execute("CREATE TABLE r (id int PRIMARY KEY, v int)")
        s.execute("SELECT create_reference_table('r')")
        s.execute("INSERT INTO r VALUES (1, 0)")
        s.execute("UPDATE r SET v = 5 WHERE id = 1")
        assert s.execute("SELECT v FROM r WHERE id = 1").scalar() == 5


class TestShardForValue:
    def test_udf_round_trips_with_pruning(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE d (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('d', 'k')")
        dist = citus.coordinator_ext.metadata.cache.get_table("d")
        for key in (0, 1, 17, 12345):
            shardid = s.execute(
                "SELECT get_shard_id_for_distribution_column('d', $1)", [key]
            ).scalar()
            index = dist.shard_index_for_hash(hash_value(key))
            assert dist.shards[index].shardid == shardid


class TestMetadataSync:
    def test_worker_gets_metadata_and_shells(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE d (k int PRIMARY KEY, v int)")
        s.execute("SELECT create_distributed_table('d', 'k')")
        s.execute("INSERT INTO d VALUES (1, 10)")
        citus.enable_metadata_sync()
        worker_ext = citus.cluster.node("worker1").extensions["citus"]
        assert worker_ext.metadata.cache.is_citus_table("d")
        ws = citus.session_on("worker1")
        assert ws.execute("SELECT count(*) FROM d").scalar() == 1

    def test_worker_can_write(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE d (k int PRIMARY KEY, v int)")
        s.execute("SELECT create_distributed_table('d', 'k')")
        citus.enable_metadata_sync()
        ws = citus.session_on("worker2")
        ws.execute("INSERT INTO d VALUES (5, 50)")
        assert s.execute("SELECT v FROM d WHERE k = 5").scalar() == 50

    def test_ddl_udfs_rejected_on_worker(self, citus, citus_session):
        citus.enable_metadata_sync()
        ws = citus.session_on("worker1")
        ws.execute("CREATE TABLE w_local (k int PRIMARY KEY)")
        with pytest.raises(MetadataError):
            ws.execute("SELECT create_distributed_table('w_local', 'k')")

    def test_new_table_syncs_automatically(self, citus, citus_session):
        citus.enable_metadata_sync()
        s = citus_session
        s.execute("CREATE TABLE late (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('late', 'k')")
        worker_ext = citus.cluster.node("worker1").extensions["citus"]
        assert worker_ext.metadata.cache.is_citus_table("late")


class TestDropAndUndistribute:
    def test_drop_distributed_table_removes_shards(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE d (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('d', 'k')")
        dist = citus.coordinator_ext.metadata.cache.get_table("d")
        shard_names = [(citus.coordinator_ext.metadata.cache.placement_node(x.shardid),
                        x.shard_name) for x in dist.shards]
        s.execute("DROP TABLE d")
        assert not citus.coordinator_ext.metadata.cache.is_citus_table("d")
        for node, shard_name in shard_names:
            assert not citus.cluster.node(node).catalog.has_table(shard_name)

    def test_undistribute_pulls_data_back(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE d (k int PRIMARY KEY, v int)")
        s.execute("SELECT create_distributed_table('d', 'k')")
        s.execute("INSERT INTO d VALUES (1, 10), (2, 20)")
        s.execute("SELECT undistribute_table('d')")
        assert not citus.coordinator_ext.metadata.cache.is_citus_table("d")
        assert s.execute("SELECT count(*) FROM d").scalar() == 2
