"""Streaming write data plane: pipelined INSERT..SELECT / COPY routing.

Covers the per-shard COPY channel router end to end:

- **bounded buffering** (the acceptance criterion): a large repartition
  INSERT..SELECT keeps the coordinator's write-side buffer at
  ``copy_flush_threshold × shard_count`` rows, not the total row count;
- **parity**: all three INSERT..SELECT strategies and programmatic COPY
  produce identical destination shard contents with
  ``citus.enable_streaming_writes`` on and off;
- **atomicity**: a NULL distribution column or a client-side error after
  flushes have already been dispatched rolls back every shard write and
  leaves the gauges settled;
- **observability**: the new ``copy_*`` counters, the "Repartition:"
  line in ``citus_explain``, and per-flush EXPLAIN ANALYZE actuals;
- the satellite: the ``local_dest`` coordinator path inserts value rows
  directly instead of rebuilding per-row INSERT ASTs.
"""

import pytest

from repro import make_cluster
from repro.errors import NotNullViolation, UniqueViolation

SHARDS = 8  # the conftest ``citus`` fixture's per-table shard count


def counters_dict(session):
    """citus_stat_counters() rows as {(name, node): value}."""
    rows = session.execute("SELECT citus_stat_counters()").rows
    out = {}
    for (entries,) in rows:
        for name, node, value in entries:
            out[(name, node)] = value
    return out


def counter_total(session, name):
    return sum(v for (n, _node), v in counters_dict(session).items() if n == name)


def shard_rows(citus, table):
    """{shard_name: sorted row tuples} read directly from the workers."""
    ext = citus.coordinator_ext
    dist = ext.metadata.cache.get_table(table)
    out = {}
    for shard in dist.shards:
        node = ext.metadata.cache.placement_node(shard.shardid)
        check = citus.cluster.node(node).connect()
        rows = check.execute(f"SELECT * FROM {shard.shard_name}").rows
        check.close()
        out[shard.shard_name] = sorted(tuple(r) for r in rows)
    return out


def make_tables(s, with_dest_pk=False):
    s.execute("CREATE TABLE src (k int PRIMARY KEY, v int, label text)")
    s.execute("SELECT create_distributed_table('src', 'k')")
    pk = " PRIMARY KEY" if with_dest_pk else ""
    s.execute(f"CREATE TABLE dest (id int{pk}, val int)")
    s.execute("SELECT create_distributed_table('dest', 'id')")


def load_src(s, n, null_v_at=None):
    rows = [
        [k, None if k == null_v_at else k, f"label-{k}"] for k in range(1, n + 1)
    ]
    s.copy_rows("src", rows, ["k", "v", "label"])


@pytest.fixture
def s(citus):
    s = citus.coordinator_session()
    make_tables(s)
    return s


# The three INSERT..SELECT strategies over src(k)->dest(id):
#  - pushdown: dest key fed by the source key, co-located shard pairs;
#  - repartition: dest key fed by a non-distribution column;
#  - coordinator: cross-shard aggregate forces a coordinator merge.
STRATEGY_SQL = {
    "pushdown": "INSERT INTO dest (id, val) SELECT k, v FROM src",
    "repartition": "INSERT INTO dest (id, val) SELECT v, k FROM src",
    "coordinator":
        "INSERT INTO dest (id, val) SELECT v, count(*) FROM src GROUP BY v",
}


# --------------------------------------------------------------- acceptance


class TestBoundedPeak:
    def test_repartition_peak_bounded_by_flush_threshold(self, citus, s):
        """≥ 10k-row repartition INSERT..SELECT: the coordinator's write
        buffer peaks at flush_threshold × shards, not the total row count."""
        ext = citus.coordinator_ext
        load_src(s, 10_000)
        s.execute(STRATEGY_SQL["repartition"])
        report = ext.executor.last_report  # the write-side channel report
        assert s.execute("SELECT count(*) FROM dest").scalar() == 10_000

        threshold = ext.config.copy_flush_threshold
        assert 0 < report.copy_channel_peak_rows <= threshold * SHARDS
        assert report.copy_channel_peak_rows < 10_000 / 2
        assert report.copy_flushes >= 10_000 // threshold
        assert report.copy_rows_routed == 10_000
        assert report.copy_bytes_streamed > 0

        gauge = counters_dict(s)[("copy_channel_peak_rows", None)]
        assert 0 < gauge <= threshold * SHARDS

    def test_flush_threshold_guc_is_respected(self, citus, s):
        ext = citus.coordinator_ext
        ext.config.copy_flush_threshold = 16
        rows = [[k, k, f"l{k}"] for k in range(1, 2_001)]
        s.copy_rows("src", rows, ["k", "v", "label"])
        report = ext.executor.last_report
        assert 0 < report.copy_channel_peak_rows <= 16 * SHARDS
        assert report.copy_flushes >= 2_000 // 16

    def test_copy_peak_far_below_total(self, citus, s):
        load_src(s, 10_000)
        report = citus.coordinator_ext.executor.last_report
        assert report.copy_rows_routed == 10_000
        assert report.copy_channel_peak_rows < 10_000 / 2


# ------------------------------------------------------------------- parity


def run_with_streaming(enabled, sql=None, copy_rows=None, n=3_000):
    """Fresh identical cluster; run the write with the GUC set; return
    (shard contents of dest, destination rowcount, copy_flushes total)."""
    citus = make_cluster(workers=2, shard_count=SHARDS)
    s = citus.coordinator_session()
    make_tables(s)
    load_src(s, n)
    citus.coordinator_ext.config.enable_streaming_writes = enabled
    before = counter_total(s, "copy_flushes")
    if sql is not None:
        s.execute(sql)
    if copy_rows is not None:
        s.copy_rows("dest", copy_rows, ["id", "val"])
    flushes = counter_total(s, "copy_flushes") - before
    count = s.execute("SELECT count(*) FROM dest").scalar()
    return shard_rows(citus, "dest"), count, flushes


class TestStreamingOffParity:
    @pytest.mark.parametrize("strategy", sorted(STRATEGY_SQL))
    def test_insert_select_same_shard_contents(self, strategy):
        sql = STRATEGY_SQL[strategy]
        on_shards, on_count, on_flushes = run_with_streaming(True, sql=sql)
        off_shards, off_count, off_flushes = run_with_streaming(False, sql=sql)
        assert on_count == off_count > 0
        assert on_shards == off_shards
        assert off_flushes == 0
        if strategy != "pushdown":  # pushdown never moves rows through COPY
            assert on_flushes > 0

    def test_copy_same_shard_contents(self):
        rows = [[k, k * 3] for k in range(1, 3_001)]
        on_shards, on_count, on_flushes = run_with_streaming(
            True, copy_rows=rows, n=10)
        off_shards, off_count, off_flushes = run_with_streaming(
            False, copy_rows=rows, n=10)
        assert on_count == off_count == 3_000
        assert on_shards == off_shards
        assert on_flushes > 0 and off_flushes == 0

    def test_off_switch_restores_materialized_plane(self, citus, s):
        ext = citus.coordinator_ext
        ext.config.enable_streaming_writes = False
        before = counter_total(s, "copy_flushes")
        load_src(s, 1_000)
        s.execute(STRATEGY_SQL["repartition"])
        assert counter_total(s, "copy_flushes") == before
        assert ("copy_channel_peak_rows", None) not in counters_dict(s)
        assert s.execute("SELECT count(*) FROM dest").scalar() == 1_000

    def test_reference_table_copy_replicates_streaming(self, citus, s):
        s.execute("CREATE TABLE dims (id int PRIMARY KEY, n text)")
        s.execute("SELECT create_reference_table('dims')")
        s.copy_rows("dims", [[i, f"d{i}"] for i in range(1, 41)])
        dist = citus.coordinator_ext.metadata.cache.get_table("dims")
        shard = dist.shards[0].shard_name
        for node in citus.cluster.node_names():
            check = citus.cluster.node(node).connect()
            assert check.execute(f"SELECT count(*) FROM {shard}").scalar() == 40
            check.close()


# ---------------------------------------------------------------- atomicity


class TestMidStreamAtomicity:
    def test_copy_null_dist_column_after_flushes_rolls_back(self, citus, s):
        """Rows already flushed to the workers under the write transaction
        must all roll back when a later row fails the NULL check."""
        ext = citus.coordinator_ext
        ext.config.copy_flush_threshold = 16
        before = counter_total(s, "copy_flushes")
        rows = [[k, k, f"l{k}"] for k in range(1, 501)] + [[None, 0, "boom"]]
        with pytest.raises(NotNullViolation):
            s.copy_rows("src", rows, ["k", "v", "label"])
        # Flushes were dispatched before the failure…
        assert counter_total(s, "copy_flushes") > before
        # …and every shard write rolled back.
        assert s.execute("SELECT count(*) FROM src").scalar() == 0
        assert all(not rows for rows in shard_rows(citus, "src").values())

    def test_insert_select_null_dest_key_mid_stream_rolls_back(self, citus, s):
        ext = citus.coordinator_ext
        ext.config.copy_flush_threshold = 16
        load_src(s, 2_000, null_v_at=1_900)  # v is the dest dist key below
        with pytest.raises(NotNullViolation):
            s.execute(STRATEGY_SQL["repartition"])
        assert s.execute("SELECT count(*) FROM dest").scalar() == 0
        assert all(not rows for rows in shard_rows(citus, "dest").values())

    def test_client_error_mid_stream_rolls_back(self, citus, s):
        ext = citus.coordinator_ext
        ext.config.copy_flush_threshold = 16

        def feed():
            for k in range(1, 501):
                yield [k, k, f"l{k}"]
            raise RuntimeError("client hung up")

        with pytest.raises(RuntimeError):
            s.copy_rows("src", feed(), ["k", "v", "label"])
        assert s.execute("SELECT count(*) FROM src").scalar() == 0

    def test_gauges_settle_after_failure(self, citus, s):
        citus.coordinator_ext.config.copy_flush_threshold = 16
        rows = [[k, k, f"l{k}"] for k in range(1, 201)] + [[None, 0, "x"]]
        with pytest.raises(NotNullViolation):
            s.copy_rows("src", rows, ["k", "v", "label"])
        counters = counters_dict(s)
        in_flight = [v for (n, _), v in counters.items()
                     if n in ("executor_statements_in_flight", "tasks_in_flight")]
        assert all(v == 0 for v in in_flight)
        # The plane stays usable: the next COPY succeeds end to end.
        s.copy_rows("src", [[1, 1, "ok"], [2, 2, "ok"]], ["k", "v", "label"])
        assert s.execute("SELECT count(*) FROM src").scalar() == 2

    def test_duplicate_key_mid_stream_rolls_back(self, citus, s):
        citus.coordinator_ext.config.copy_flush_threshold = 4
        s.execute("INSERT INTO src VALUES (40, 1, 'seed')")
        rows = [[k, k, f"l{k}"] for k in range(1, 101)]  # k=40 collides
        with pytest.raises(UniqueViolation):
            s.copy_rows("src", rows, ["k", "v", "label"])
        assert s.execute("SELECT count(*) FROM src").scalar() == 1


# ------------------------------------------------------------ observability


class TestObservability:
    def test_counters_exposed_via_udf(self, citus, s):
        before = counters_dict(s)
        load_src(s, 2_000)
        after = counters_dict(s)
        routed = sum(v - before.get((n, node), 0)
                     for (n, node), v in after.items() if n == "copy_rows_routed")
        streamed = sum(v - before.get((n, node), 0)
                       for (n, node), v in after.items()
                       if n == "copy_bytes_streamed")
        assert routed == 2_000
        assert streamed > 0
        assert after[("copy_channel_peak_rows", None)] > 0

    def test_explain_shows_streaming_repartition(self, citus, s):
        text = s.execute(
            "SELECT citus_explain("
            "'INSERT INTO dest (id, val) SELECT v, k FROM src')"
        ).scalar()
        threshold = citus.coordinator_ext.config.copy_flush_threshold
        assert f"Repartition: streaming (flush_threshold={threshold}," in text
        assert f"channels={SHARDS}" in text
        assert "strategy=repartition" in text

    def test_explain_shows_materialized_when_off(self, citus, s):
        citus.coordinator_ext.config.enable_streaming_writes = False
        text = s.execute(
            "SELECT citus_explain("
            "'INSERT INTO dest (id, val) SELECT v, k FROM src')"
        ).scalar()
        assert "Repartition: materialized" in text

    def test_explain_analyze_reports_flush_actuals(self, citus, s):
        load_src(s, 2_000)
        text = s.execute(
            "SELECT citus_explain_analyze("
            "'INSERT INTO dest (id, val) SELECT v, k FROM src')"
        ).scalar()
        assert "Repartition: streaming" in text
        assert "actual rows=2000" in text
        assert "flushes=" in text
        assert "channel_peak_rows=" in text
        # The write actually ran under ANALYZE.
        assert s.execute("SELECT count(*) FROM dest").scalar() == 2_000

    def test_coordinator_strategy_reports_repartition(self, citus, s):
        text = s.execute(
            "SELECT citus_explain('" + STRATEGY_SQL["coordinator"] + "')"
        ).scalar()
        assert "Repartition: streaming" in text
        assert "strategy=coordinator" in text


# ------------------------------------------------- coordinator / local dest


class TestLocalDestination:
    def test_distributed_select_into_local_table(self, citus, s):
        load_src(s, 500)
        s.execute("CREATE TABLE loc (id int, val int)")
        s.execute("INSERT INTO loc (id, val) SELECT k, v FROM src")
        assert s.execute("SELECT count(*) FROM loc").scalar() == 500
        assert s.execute("SELECT val FROM loc WHERE id = 42").scalar() == 42

    def test_local_dest_enforces_constraints(self, citus, s):
        load_src(s, 10)
        s.execute("CREATE TABLE loc (id int PRIMARY KEY, val int)")
        s.execute("INSERT INTO loc (id, val) SELECT k, v FROM src")
        with pytest.raises(UniqueViolation):
            s.execute("INSERT INTO loc (id, val) SELECT k, v FROM src")
        assert s.execute("SELECT count(*) FROM loc").scalar() == 10
