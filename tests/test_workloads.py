"""Workload equivalence tests: every paper workload must produce identical
results on single PostgreSQL and on Citus clusters of different sizes —
the functional core of the benchmark reproduction."""

import pytest

from repro import PostgresInstance, make_cluster
from repro.workloads import gharchive, pgbench, tpcc, tpch, ycsb


def pg_session():
    return PostgresInstance("pg").connect()


def norm(rows):
    return [
        tuple(round(v, 4) if isinstance(v, float) else str(v) for v in row)
        for row in rows
    ]


class TestTpcc:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_state_matches_postgres(self, workers):
        cfg = tpcc.TpccConfig(warehouses=4, items=15)

        def run(session, distributed):
            tpcc.create_schema(session, distributed=distributed)
            tpcc.load_data(session, cfg)
            driver = tpcc.TpccDriver(session, cfg)
            driver.run(50)
            return tpcc.consistency_totals(session), driver.stats

        pg_state, pg_stats = run(pg_session(), False)
        citus = make_cluster(workers=workers, shard_count=8)
        citus_state, citus_stats = run(citus.coordinator_session(), True)
        assert pg_state == citus_state
        assert pg_stats.total == citus_stats.total

    def test_balance_invariant(self):
        # Payments move money: sum(balance) == -sum(ytd receipts).
        cfg = tpcc.TpccConfig(warehouses=3, items=10)
        citus = make_cluster(workers=2, shard_count=8)
        s = citus.coordinator_session()
        tpcc.create_schema(s)
        tpcc.load_data(s, cfg)
        tpcc.TpccDriver(s, cfg).run(60)
        totals = tpcc.consistency_totals(s)
        w_ytd = s.execute("SELECT coalesce(sum(w_ytd), 0) FROM warehouse").scalar()
        d_ytd = s.execute("SELECT coalesce(sum(d_ytd), 0) FROM district").scalar()
        # Every payment adds its amount to both warehouse and district YTD
        # and subtracts it once from a customer balance.
        assert w_ytd == pytest.approx(d_ytd, abs=0.1)
        assert totals["balance"] == pytest.approx(-w_ytd, abs=0.1)

    def test_cross_warehouse_transactions_occur(self):
        cfg = tpcc.TpccConfig(warehouses=4, items=15, cross_warehouse_fraction=0.5)
        citus = make_cluster(workers=2, shard_count=8)
        s = citus.coordinator_session()
        tpcc.create_schema(s)
        tpcc.load_data(s, cfg)
        tpcc.TpccDriver(s, cfg).run(40)
        assert s.stats.get("citus_2pc_commits", 0) > 0


class TestYcsb:
    def test_results_match_postgres(self):
        cfg = ycsb.YcsbConfig(records=150)
        outcomes = []
        for distributed in (False, True):
            session = (
                make_cluster(2, shard_count=8).coordinator_session()
                if distributed
                else pg_session()
            )
            ycsb.create_schema(session, distributed=distributed)
            ycsb.load_data(session, cfg)
            driver = ycsb.YcsbDriver(session, cfg)
            stats = driver.run(120)
            digest = session.execute(
                "SELECT count(*), min(ycsb_key), max(ycsb_key) FROM usertable"
            ).first()
            outcomes.append((stats.reads, stats.updates, stats.read_misses, digest))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][2] == 0  # no misses: all keys exist

    def test_multi_coordinator_run(self):
        citus = make_cluster(2, shard_count=8)
        cfg = ycsb.YcsbConfig(records=100)
        s = citus.coordinator_session()
        ycsb.create_schema(s)
        ycsb.load_data(s, cfg)
        citus.enable_metadata_sync()
        sessions = [citus.session_on(n) for n in citus.worker_names()]
        stats = ycsb.YcsbDriver(sessions, cfg).run(80)
        assert stats.operations == 80 and stats.read_misses == 0


class TestTpch:
    def test_all_supported_queries_match(self):
        cfg = tpch.TpchConfig(orders=80)
        results = {}
        for label, distributed in (("pg", False), ("citus", True)):
            session = (
                make_cluster(2, shard_count=8).coordinator_session()
                if distributed
                else pg_session()
            )
            tpch.create_schema(session, distributed=distributed)
            tpch.load_data(session, cfg)
            results[label] = tpch.run_query_set(session)
        for name in tpch.QUERIES:
            assert norm(results["pg"][name]) == norm(results["citus"][name]), name

    def test_unsupported_queries_documented(self):
        # The paper reports 4/22 unsupported in Citus; our dialect gap list
        # plus supported set must cover all 22 (Q21 is covered as a lite
        # variant).
        covered = {q.rstrip("_lite").split("_")[0] for q in tpch.QUERIES}
        assert len(covered) + len(tpch.UNSUPPORTED_QUERIES) == 22


class TestGharchive:
    def test_dashboard_and_rollup_match_ground_truth(self):
        cfg = gharchive.ArchiveConfig(events=250)
        for distributed in (False, True):
            session = (
                make_cluster(2, shard_count=8).coordinator_session()
                if distributed
                else pg_session()
            )
            gharchive.create_schema(session, distributed=distributed)
            loaded = gharchive.load_events(session, cfg)
            assert loaded == cfg.events
            dash = session.execute(gharchive.DASHBOARD_QUERY).rows
            mentions = sum(r[1] for r in dash)
            assert mentions == gharchive.expected_postgres_mentions(cfg)
            rollup = session.execute(gharchive.TRANSFORM_QUERY)
            pushes = session.execute(
                "SELECT count(*) FROM github_events WHERE data->>'type' = 'PushEvent'"
            ).scalar()
            assert rollup.rowcount == pushes

    def test_generator_is_deterministic(self):
        cfg = gharchive.ArchiveConfig(events=50)
        a = list(gharchive.generate_events(cfg))
        b = list(gharchive.generate_events(cfg))
        assert a == b


class TestPgbench:
    @pytest.mark.parametrize("same_key", [True, False])
    def test_invariant_holds(self, same_key):
        citus = make_cluster(2, shard_count=8)
        s = citus.coordinator_session()
        cfg = pgbench.PgbenchConfig(rows=40)
        pgbench.create_schema(s)
        pgbench.load_data(s, cfg)
        s.stats.clear()  # loading itself commits via 2PC
        driver = pgbench.PgbenchDriver(s, cfg, same_key=same_key)
        driver.run(50)
        assert pgbench.invariant_sum(s) == 0
        if same_key:
            assert s.stats.get("citus_2pc_commits", 0) == 0
        else:
            assert s.stats.get("citus_2pc_commits", 0) > 0

    def test_matches_single_postgres(self):
        cfg = pgbench.PgbenchConfig(rows=30)
        sums = []
        for distributed in (False, True):
            session = (
                make_cluster(2, shard_count=8).coordinator_session()
                if distributed
                else pg_session()
            )
            pgbench.create_schema(session, distributed=distributed)
            pgbench.load_data(session, cfg)
            pgbench.PgbenchDriver(session, cfg, same_key=False).run(40)
            rows = session.execute("SELECT key, v FROM a1 ORDER BY key").rows
            sums.append(norm(rows))
        assert sums[0] == sums[1]
