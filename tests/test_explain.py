"""Distributed EXPLAIN: structured plan descriptions for every planner tier.

Each test asserts on the `DistributedExplain` tree returned by
`repro.citus.observability.explain` — chosen tier, shard pruning, task
fan-out, pushed-down vs. coordinator-evaluated clauses — and on the
pg-style text rendering.
"""

import pytest

from repro.citus.observability import PLANNER_TIERS, explain
from tests.conftest import find_keys_on_distinct_nodes


@pytest.fixture
def s(citus, citus_session):
    s = citus_session
    s.execute("CREATE TABLE orders (id int, region text, total int)")
    s.execute("SELECT create_distributed_table('orders', 'id')")
    s.execute("CREATE TABLE lines (id int, qty int)")
    s.execute("SELECT create_distributed_table('lines', 'id', colocate_with := 'orders')")
    s.execute("CREATE TABLE dims (d int PRIMARY KEY, name text)")
    s.execute("SELECT create_reference_table('dims')")
    s.execute("CREATE TABLE other (oid int, id int)")
    s.execute("SELECT create_distributed_table('other', 'oid')")
    for k in range(1, 9):
        s.execute(f"INSERT INTO orders VALUES ({k}, 'r{k % 2}', {k * 10})")
        s.execute(f"INSERT INTO lines VALUES ({k}, {k})")
        s.execute(f"INSERT INTO other VALUES ({k}, {9 - k})")
    s.execute("INSERT INTO dims VALUES (1, 'x')")
    return s


class TestTierLabels:
    """explain() names the planner tier that actually fired (§3.5)."""

    def test_fast_path_tier(self, s):
        e = explain(s, "SELECT * FROM orders WHERE id = 3")
        assert e.tier == "fast_path"
        assert e.planner == "Fast Path Router"
        assert e.task_count == 1
        assert e.distributed

    def test_router_tier(self, s):
        e = explain(
            s,
            "SELECT o.total, l.qty FROM orders o JOIN lines l ON o.id = l.id"
            " WHERE o.id = 3",
        )
        assert e.tier == "router"
        assert e.task_count == 1
        assert len(e.nodes) == 1

    def test_pushdown_tier(self, s):
        e = explain(s, "SELECT region, sum(total) FROM orders GROUP BY region")
        assert e.tier == "pushdown"
        assert e.task_count == 8
        assert sorted(e.nodes) == ["worker1", "worker2"]

    def test_join_order_tier(self, s):
        e = explain(s, "SELECT count(*) FROM orders o JOIN other t ON o.id = t.id")
        assert e.tier == "join_order"
        assert e.subplan["strategy"] in ("repartition", "broadcast")
        assert e.subplan["moved_table"] in ("orders", "other")

    def test_all_four_tiers_are_the_documented_cascade(self, s):
        tiers = [
            explain(s, q).tier
            for q in (
                "SELECT * FROM orders WHERE id = 3",
                "SELECT o.total FROM orders o JOIN lines l ON o.id = l.id"
                " WHERE o.id = 3",
                "SELECT region, sum(total) FROM orders GROUP BY region",
                "SELECT count(*) FROM orders o JOIN other t ON o.id = t.id",
            )
        ]
        assert tiers == list(PLANNER_TIERS)


class TestPruning:
    """Pruned vs. total shard counts come from the metadata cache."""

    def test_single_shard_prunes_rest(self, s):
        e = explain(s, "SELECT * FROM orders WHERE id = 3")
        assert e.total_shard_count == 8
        assert e.pruned_shard_count == 7

    def test_full_scan_prunes_nothing(self, s):
        e = explain(s, "SELECT count(*) FROM orders")
        assert e.total_shard_count == 8
        assert e.pruned_shard_count == 0
        assert e.task_count == 8

    def test_text_rendering_shows_pruning(self, s):
        text = explain(s, "SELECT * FROM orders WHERE id = 3").as_text()
        assert "Custom Scan (Citus Adaptive)" in text
        assert "Shards: 1 of 8 (7 pruned)" in text


class TestTaskFanOut:
    def test_tasks_carry_target_node_and_shard_sql(self, s):
        e = explain(s, "SELECT * FROM orders WHERE id = 3")
        assert len(e.tasks) == 1
        task = e.tasks[0]
        assert task.node in ("worker1", "worker2")
        assert "orders_" in task.sql  # rewritten to the shard name

    def test_multi_shard_fan_out_covers_both_workers(self, s):
        e = explain(s, "SELECT count(*) FROM orders")
        per_node = {}
        for task in e.tasks:
            per_node[task.node] = per_node.get(task.node, 0) + 1
        assert per_node == {"worker1": 4, "worker2": 4}

    def test_reference_write_targets_every_replica(self, s):
        e = explain(s, "UPDATE dims SET name = 'y' WHERE d = 1")
        assert e.tier == "reference"
        assert e.is_write
        assert e.task_count == 3  # coordinator + both workers
        assert set(e.nodes) == {"coordinator", "worker1", "worker2"}


class TestClauseClassification:
    """Pushed-down vs. coordinator-evaluated clauses (§3.5's two-phase
    aggregation / merge step)."""

    def test_partial_aggregation_split(self, s):
        e = explain(s, "SELECT region, sum(total) FROM orders GROUP BY region")
        assert "PARTIAL AGGREGATES" in e.pushed_down
        assert "MERGE AGGREGATES" in e.coordinator
        assert e.merge_query is not None and "sum(" in e.merge_query

    def test_order_limit_split(self, s):
        e = explain(s, "SELECT * FROM orders ORDER BY total LIMIT 3")
        assert "LIMIT (combined)" in e.pushed_down
        assert "SORT (merge)" in e.coordinator
        assert "LIMIT" in e.coordinator

    def test_single_shard_pushes_full_statement(self, s):
        e = explain(s, "SELECT * FROM orders WHERE id = 3")
        assert e.pushed_down == ["FULL STATEMENT"]
        assert e.coordinator == []


class TestWritesAndOtherPlans:
    def test_multi_shard_update_is_pushdown_write(self, s):
        e = explain(s, "UPDATE orders SET total = 0")
        assert e.tier == "pushdown"
        assert e.is_write
        assert e.task_count == 8
        # explain never executes: no row was actually updated.
        assert s.execute("SELECT count(*) FROM orders WHERE total = 0").scalar() == 0

    def test_multi_row_insert_groups_by_shard(self, s):
        e = explain(s, "INSERT INTO orders VALUES (101, 'a', 1), (102, 'b', 2)")
        assert e.tier == "insert_values"
        assert e.is_write
        assert e.task_count == 2
        assert s.execute("SELECT count(*) FROM orders").scalar() == 8

    def test_insert_select_reports_strategy(self, s):
        e = explain(
            s,
            "INSERT INTO lines (id, qty)"
            " SELECT id, total FROM orders WHERE total > 20",
        )
        assert e.tier == "insert_select"
        assert e.subplan["strategy"] in ("pushdown", "repartition", "coordinator")
        assert e.subplan["destination"] == "lines"

    def test_local_table_falls_through_to_postgres(self, s):
        s.execute("CREATE TABLE plainlocal (x int)")
        e = explain(s, "SELECT * FROM plainlocal")
        assert e.tier == "local"
        assert not e.distributed
        assert any("Seq Scan" in line for line in e.local_plan)


class TestRenderings:
    def test_as_dict_round_trip(self, s):
        d = explain(s, "SELECT region, sum(total) FROM orders GROUP BY region").as_dict()
        assert d["tier"] == "pushdown"
        assert d["task_count"] == 8
        assert d["total_shard_count"] == 8
        assert len(d["tasks"]) == 8
        assert all({"node", "sql"} <= set(t) for t in d["tasks"])

    def test_explain_keyword_is_unwrapped(self, s):
        e = explain(s, "EXPLAIN SELECT * FROM orders WHERE id = 3")
        assert e.tier == "fast_path"

    def test_udf_returns_same_text(self, s):
        # Warm the plan cache so both renderings describe a replayed plan
        # (the second planning of a statement carries the "(cached)" marker).
        explain(s, "SELECT * FROM orders WHERE id = 3")
        text = s.execute(
            "SELECT citus_explain('SELECT * FROM orders WHERE id = 3')"
        ).scalar()
        assert text == explain(s, "SELECT * FROM orders WHERE id = 3").as_text()

    def test_text_lists_tasks_per_node(self, s):
        text = explain(s, "SELECT count(*) FROM orders").as_text()
        assert text.count("->  Task on worker1") == 4
        assert text.count("->  Task on worker2") == 4

    def test_keys_on_distinct_nodes_route_to_distinct_nodes(self, citus, s):
        k1, k2 = find_keys_on_distinct_nodes(citus, "orders")
        n1 = explain(s, f"SELECT * FROM orders WHERE id = {k1}").nodes
        n2 = explain(s, f"SELECT * FROM orders WHERE id = {k2}").nodes
        assert n1 != n2
