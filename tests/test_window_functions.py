"""Window function tests: engine semantics and distributed pushdown."""

import pytest

from repro.errors import DataError, UnsupportedDistributedQuery


@pytest.fixture
def s(session):
    session.execute("CREATE TABLE t (g int, k int, v int, PRIMARY KEY (g, k))")
    session.execute(
        "INSERT INTO t VALUES (1,1,10),(1,2,30),(1,3,20),(1,4,30),"
        " (2,1,5),(2,2,5),(2,3,50)"
    )
    return session


class TestRanking:
    def test_row_number(self, s):
        rows = s.execute(
            "SELECT k, row_number() OVER (PARTITION BY g ORDER BY v DESC)"
            " FROM t WHERE g = 1 ORDER BY k"
        ).rows
        assert rows == [[1, 4], [2, 1], [3, 3], [4, 2]]

    def test_rank_with_ties(self, s):
        rows = s.execute(
            "SELECT k, rank() OVER (PARTITION BY g ORDER BY v)"
            " FROM t WHERE g = 1 ORDER BY k"
        ).rows
        # v: 10(k1)=1, 30(k2)=3, 20(k3)=2, 30(k4)=3 — rank skips after ties
        assert rows == [[1, 1], [2, 3], [3, 2], [4, 3]]

    def test_dense_rank(self, s):
        rows = s.execute(
            "SELECT k, dense_rank() OVER (PARTITION BY g ORDER BY v)"
            " FROM t WHERE g = 1 ORDER BY k"
        ).rows
        assert rows == [[1, 1], [2, 3], [3, 2], [4, 3]]

    def test_ntile(self, s):
        rows = s.execute(
            "SELECT k, ntile(2) OVER (PARTITION BY g ORDER BY k)"
            " FROM t WHERE g = 1 ORDER BY k"
        ).rows
        assert [r[1] for r in rows] == [1, 1, 2, 2]

    def test_row_number_without_partition(self, s):
        rows = s.execute(
            "SELECT row_number() OVER (ORDER BY g, k) FROM t ORDER BY 1"
        ).rows
        assert [r[0] for r in rows] == list(range(1, 8))


class TestAggregateWindows:
    def test_partition_total(self, s):
        rows = s.execute(
            "SELECT DISTINCT g, sum(v) OVER (PARTITION BY g) FROM t ORDER BY g"
        ).rows
        assert rows == [[1, 90], [2, 60]]

    def test_running_sum_default_frame(self, s):
        rows = s.execute(
            "SELECT k, sum(v) OVER (PARTITION BY g ORDER BY k)"
            " FROM t WHERE g = 2 ORDER BY k"
        ).rows
        assert rows == [[1, 5], [2, 10], [3, 60]]

    def test_running_sum_peers_share_frame(self, s):
        # Two rows with the same ORDER BY key are peers: both see the frame
        # ending at the last peer (PostgreSQL RANGE default).
        rows = s.execute(
            "SELECT k, sum(k) OVER (PARTITION BY g ORDER BY v)"
            " FROM t WHERE g = 2 ORDER BY k"
        ).rows
        # v: k1=5, k2=5 (peers), k3=50
        assert rows == [[1, 3], [2, 3], [3, 6]]

    def test_avg_and_count_windows(self, s):
        row = s.execute(
            "SELECT avg(v) OVER (PARTITION BY g), count(*) OVER (PARTITION BY g)"
            " FROM t WHERE g = 1 LIMIT 1"
        ).first()
        assert row[0] == pytest.approx(22.5)
        assert row[1] == 4

    def test_expression_around_window(self, s):
        rows = s.execute(
            "SELECT k, v - avg(v) OVER (PARTITION BY g) AS delta"
            " FROM t WHERE g = 2 ORDER BY k"
        ).rows
        assert [r[1] for r in rows] == [-15.0, -15.0, 30.0]


class TestNavigation:
    def test_lag_lead(self, s):
        rows = s.execute(
            "SELECT k, lag(v) OVER (PARTITION BY g ORDER BY k),"
            " lead(v) OVER (PARTITION BY g ORDER BY k)"
            " FROM t WHERE g = 2 ORDER BY k"
        ).rows
        assert rows == [[1, None, 5], [2, 5, 50], [3, 5, None]]

    def test_lag_with_offset_and_default(self, s):
        rows = s.execute(
            "SELECT k, lag(v, 2, -1) OVER (PARTITION BY g ORDER BY k)"
            " FROM t WHERE g = 2 ORDER BY k"
        ).rows
        assert [r[1] for r in rows] == [-1, -1, 5]

    def test_first_and_last_value(self, s):
        row = s.execute(
            "SELECT first_value(v) OVER (PARTITION BY g ORDER BY k),"
            " last_value(v) OVER (PARTITION BY g ORDER BY k)"
            " FROM t WHERE g = 2 LIMIT 1"
        ).first()
        assert row == [5, 50]


class TestWindowErrors:
    def test_window_plus_group_by_rejected(self, s):
        with pytest.raises(DataError):
            s.execute(
                "SELECT g, sum(v), row_number() OVER (ORDER BY g)"
                " FROM t GROUP BY g"
            )


class TestDistributedWindows:
    @pytest.fixture
    def c(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE t (g int, k int, v int, PRIMARY KEY (g, k))")
        s.execute("SELECT create_distributed_table('t', 'g')")
        s.copy_rows("t", [[g, k, g * 10 + k] for g in range(1, 7) for k in range(1, 4)])
        return s

    def test_partition_by_dist_column_pushes_down(self, c):
        rows = c.execute(
            "SELECT g, k, row_number() OVER (PARTITION BY g ORDER BY v DESC)"
            " FROM t ORDER BY g, k"
        ).rows
        for g, k, rn in rows:
            assert rn == 4 - k  # v grows with k: highest v → row_number 1

    def test_results_match_single_postgres(self, c):
        from repro import PostgresInstance

        pg = PostgresInstance("pg").connect()
        pg.execute("CREATE TABLE t (g int, k int, v int, PRIMARY KEY (g, k))")
        pg.copy_rows("t", [[g, k, g * 10 + k] for g in range(1, 7) for k in range(1, 4)])
        sql = ("SELECT g, k, sum(v) OVER (PARTITION BY g ORDER BY k)"
               " FROM t ORDER BY g, k")
        assert c.execute(sql).rows == pg.execute(sql).rows

    def test_non_dist_partition_rejected(self, c):
        with pytest.raises(UnsupportedDistributedQuery):
            c.execute("SELECT row_number() OVER (PARTITION BY k ORDER BY v) FROM t")

    def test_no_partition_rejected(self, c):
        with pytest.raises(UnsupportedDistributedQuery):
            c.execute("SELECT row_number() OVER (ORDER BY v) FROM t")

    def test_single_tenant_window_routes(self, c):
        # With a distribution filter the router delegates the whole query:
        # any window shape is fine on one shard.
        rows = c.execute(
            "SELECT k, row_number() OVER (ORDER BY v DESC) FROM t"
            " WHERE g = 3 ORDER BY k"
        ).rows
        assert [r[1] for r in rows] == [3, 2, 1]
