"""Distributed-transaction co-access graph + time-windowed statistics:
access-set capture across the 1PC/2PC/autocommit/streaming paths, edge
tagging, window-ring rollover/retention edge cases, reset scopes, the
zero-surface disabled mode, deterministic exports, and the SLO RatioRule
lower bound."""

from __future__ import annotations

import json

import pytest

from repro import make_cluster
from repro.citus.extension import CitusConfig
from repro.citus.txngraph import TxnGraph, WindowRing, group_label
from repro.engine.datum import hash_value
from repro.engine.stats import StatsRegistry
from repro.errors import MetadataError
from repro.workloads.traffic import RatioRule

from .conftest import find_keys_on_distinct_nodes


def _setup_accounts(citus, rows: int = 64):
    s = citus.coordinator_session()
    s.execute("CREATE TABLE accounts (k int PRIMARY KEY, v int)")
    s.execute("SELECT create_distributed_table('accounts', 'k')")
    s.copy_rows("accounts", [[i, 0] for i in range(1, rows + 1)], ["k", "v"])
    return s


def _keys_same_node_distinct_groups(citus, table: str) -> list[int]:
    """Two distribution keys whose shards live on one node but in
    different co-located shard groups."""
    ext = citus.coordinator_ext
    dist = ext.metadata.cache.get_table(table)
    by_node: dict[str, dict[int, int]] = {}
    for key in range(1, 10_000):
        index = dist.shard_index_for_hash(hash_value(key))
        node = ext.metadata.cache.placement_node(dist.shards[index].shardid)
        groups = by_node.setdefault(node, {})
        groups.setdefault(index, key)
        if len(groups) >= 2:
            return list(groups.values())[:2]
    raise AssertionError("could not find same-node keys in distinct groups")


def _graph_counters(session) -> dict:
    return {
        row[0]: row[2]
        for row in session.execute("SELECT citus_stat_counters()").scalar()
        if row[0].startswith("txngraph") and row[1] is None
    }


def _edge_rows(session) -> list:
    return session.execute("SELECT citus_stat_txn_graph()").scalar()


# ------------------------------------------------------ access capture


class TestAccessCapture:
    def test_single_shard_autocommit_folds_a_vertex_no_edges(self, citus):
        s = _setup_accounts(citus)
        s.execute("SELECT citus_stat_reset('all')")
        s.execute("UPDATE accounts SET v = v + 1 WHERE k = 1")
        vertices = s.execute("SELECT citus_stat_txn_graph('vertices')").scalar()
        assert len(vertices) == 1
        assert vertices[0][1] == 1  # txns
        assert vertices[0][2] == 1  # writes
        assert _edge_rows(s) == []
        counters = _graph_counters(s)
        assert counters["txngraph_txns"] == 1
        assert "txngraph_txns_multi_group" not in counters
        assert "txngraph_txns_block" not in counters

    def test_same_node_block_txn_folds_single_node_edge(self, citus):
        s = _setup_accounts(citus)
        k1, k2 = _keys_same_node_distinct_groups(citus, "accounts")
        s.execute("SELECT citus_stat_reset('all')")
        s.execute("BEGIN")
        s.execute("UPDATE accounts SET v = v + 1 WHERE k = :k", {"k": k1})
        s.execute("UPDATE accounts SET v = v + 1 WHERE k = :k", {"k": k2})
        s.execute("COMMIT")
        edges = _edge_rows(s)
        assert len(edges) == 1
        src, dst, txns, single_node, cross_node, twopc, writes, nbytes, recent = edges[0]
        assert txns == 1 and single_node == 1 and cross_node == 0 and twopc == 0
        assert writes == 1 and nbytes > 0 and recent == 1
        counters = _graph_counters(s)
        assert counters["txngraph_txns_block"] == 1
        assert counters["txngraph_txns_block_multi_group"] == 1
        assert "txngraph_txns_2pc" not in counters

    def test_cross_node_write_txn_folds_twopc_edge(self, citus):
        s = _setup_accounts(citus)
        k1, k2 = find_keys_on_distinct_nodes(citus, "accounts")
        s.execute("SELECT citus_stat_reset('all')")
        s.execute("BEGIN")
        s.execute("UPDATE accounts SET v = v + 1 WHERE k = :k", {"k": k1})
        s.execute("UPDATE accounts SET v = v + 1 WHERE k = :k", {"k": k2})
        s.execute("COMMIT")
        edges = _edge_rows(s)
        assert len(edges) == 1
        assert edges[0][5] == 1  # twopc
        assert edges[0][4] == 0  # a 2PC txn is not double-counted cross_node
        counters = _graph_counters(s)
        assert counters["txngraph_txns_2pc"] == 1
        assert counters["txngraph_txns_cross_node"] == 1

    def test_multi_shard_read_folds_cross_node_edges(self, citus):
        s = _setup_accounts(citus)
        s.execute("SELECT citus_stat_reset('all')")
        s.execute("SELECT count(*) FROM accounts")
        edges = _edge_rows(s)
        assert edges, "multi-shard scan should produce co-access edges"
        assert all(e[4] == 1 and e[5] == 0 and e[6] == 0 for e in edges)
        counters = _graph_counters(s)
        assert counters["txngraph_txns_cross_node"] == 1
        assert "txngraph_txns_block" not in counters  # autocommit

    def test_aborted_txn_is_counted_but_not_folded(self, citus):
        s = _setup_accounts(citus)
        k1, k2 = find_keys_on_distinct_nodes(citus, "accounts")
        s.execute("SELECT citus_stat_reset('all')")
        s.execute("BEGIN")
        s.execute("UPDATE accounts SET v = v + 1 WHERE k = :k", {"k": k1})
        s.execute("UPDATE accounts SET v = v + 1 WHERE k = :k", {"k": k2})
        s.execute("ROLLBACK")
        assert _edge_rows(s) == []
        counters = _graph_counters(s)
        assert counters["txngraph_txns_aborted"] == 1
        assert "txngraph_txns" not in counters

    def test_vertices_attribute_tenants(self, citus):
        s = _setup_accounts(citus)
        s.execute("SELECT citus_stat_reset('all')")
        s.execute("UPDATE accounts SET v = v + 1 WHERE k = 7")
        vertices = s.execute("SELECT citus_stat_txn_graph('vertices')").scalar()
        assert vertices[0][4] == 1  # tenants
        assert vertices[0][5] == ["7"]  # top_tenants

    def test_streaming_copy_writes_are_captured(self, citus):
        s = citus.coordinator_session()
        s.execute("CREATE TABLE items (k int PRIMARY KEY, v int)")
        s.execute("SELECT create_distributed_table('items', 'k')")
        s.execute("SELECT citus_stat_reset('all')")
        s.copy_rows("items", [[i, i] for i in range(1, 65)], ["k", "v"])
        counters = _graph_counters(s)
        assert counters["txngraph_txns"] == 1
        vertices = s.execute("SELECT citus_stat_txn_graph('vertices')").scalar()
        assert len(vertices) == citus.coordinator_ext.config.shard_count
        assert all(v[2] == 1 for v in vertices)  # every group saw the write


# ----------------------------------------------------------- exports


class TestExports:
    def test_json_and_dot_exports(self, citus):
        s = _setup_accounts(citus)
        s.execute("SELECT citus_stat_reset('all')")
        s.execute("SELECT count(*) FROM accounts")
        payload = json.loads(s.execute("SELECT citus_stat_txn_graph('json')").scalar())
        assert payload["vertices"] and payload["edges"]
        assert payload["wide_txns"] == 0
        dot = s.execute("SELECT citus_stat_txn_graph('dot')").scalar()
        assert dot.startswith("graph citus_txn_graph {")
        assert "--" in dot and dot.rstrip().endswith("}")

    def test_metrics_snapshot_contains_sorted_graph_families(self, citus):
        s = _setup_accounts(citus)
        s.execute("SELECT count(*) FROM accounts")
        snap = s.execute("SELECT citus_metrics_snapshot()").scalar()
        assert "# TYPE citus_txn_graph_edges gauge" in snap
        assert "# TYPE citus_txn_window_statements gauge" in snap
        edge_lines = [l for l in snap.splitlines()
                      if l.startswith("citus_txn_graph_edge_txns_total{")]
        assert edge_lines == sorted(edge_lines)
        # Graph families sit between histogram summaries and node health.
        assert (snap.index("citus_txn_graph_edges")
                < snap.index("# TYPE citus_node_up gauge"))

    def test_windows_rows_carry_counter_deltas(self, citus):
        s = _setup_accounts(citus)
        s.execute("SELECT citus_stat_reset('all')")
        s.execute("BEGIN")
        s.execute("UPDATE accounts SET v = v + 1 WHERE k = 1")
        s.execute("COMMIT")
        rows = s.execute("SELECT citus_stat_windows()").scalar()
        assert rows
        current = rows[-1]
        assert current[3] is True  # current bucket
        assert current[4] >= 1  # statements observed
        assert current[5] > 0  # p50_ms
        counters = json.loads(current[13])
        assert counters["txngraph_txns"] == 1
        assert current[8] == 1  # txns folded in this bucket


# -------------------------------------------------------- reset scopes


class TestResetScopes:
    def test_graph_scope_clears_edges_but_not_windows(self, citus):
        s = _setup_accounts(citus)
        s.execute("SELECT count(*) FROM accounts")
        assert _edge_rows(s)
        s.execute("SELECT citus_stat_reset('graph')")
        assert _edge_rows(s) == []
        assert s.execute("SELECT citus_stat_txn_graph('vertices')").scalar() == []
        rows = s.execute("SELECT citus_stat_windows()").scalar()
        assert rows and rows[-1][4] > 0  # statement history survived

    def test_windows_scope_restarts_the_ring(self, citus):
        s = _setup_accounts(citus)
        s.execute("SELECT count(*) FROM accounts")
        s.execute("SELECT citus_stat_reset('windows')")
        rows = s.execute("SELECT citus_stat_windows()").scalar()
        assert len(rows) == 1
        assert rows[0][3] is True and rows[0][4] == 0  # fresh current bucket
        assert _edge_rows(s)  # lifetime graph untouched

    def test_all_scope_clears_both(self, citus):
        s = _setup_accounts(citus)
        s.execute("SELECT count(*) FROM accounts")
        s.execute("SELECT citus_stat_reset('all')")
        assert _edge_rows(s) == []
        rows = s.execute("SELECT citus_stat_windows()").scalar()
        assert len(rows) == 1 and rows[0][4] == 0

    def test_unknown_scope_is_rejected_and_docstring_lists_all(self, citus):
        s = _setup_accounts(citus)
        with pytest.raises(MetadataError, match="graph"):
            s.execute("SELECT citus_stat_reset('bogus')")
        catalog = citus.coordinator_ext.instance.catalog
        doc = catalog.get_function("citus_stat_reset").fn.__doc__
        for scope in ("counters", "statements", "tenants", "graph",
                      "windows", "all"):
            assert scope in doc


# ------------------------------------------------------- disabled mode


class TestDisabled:
    def test_disabled_config_means_zero_surface(self):
        citus = make_cluster(workers=2, shard_count=8,
                             config=CitusConfig(enable_txn_graph=False))
        s = _setup_accounts(citus)
        s.execute("BEGIN")
        s.execute("UPDATE accounts SET v = v + 1 WHERE k = 1")
        s.execute("COMMIT")
        s.execute("SELECT count(*) FROM accounts")
        assert citus.coordinator_ext.txn_graph is None
        for ext in citus.extensions.values():
            assert ext.txn_graph is None
        assert not hasattr(s, TxnGraph.ATTR)
        assert s.execute("SELECT citus_stat_txn_graph()").scalar() == []
        assert s.execute("SELECT citus_stat_txn_graph('json')").scalar() == "{}"
        assert s.execute("SELECT citus_stat_windows()").scalar() == []
        assert not _graph_counters(s)

    def test_runtime_toggle_detaches_every_node(self, citus):
        s = _setup_accounts(citus)
        s.execute("SELECT citus_set_config('enable_txn_graph', :v)",
                  {"v": False})
        for ext in citus.extensions.values():
            assert ext.txn_graph is None
        s.execute("SELECT citus_set_config('enable_txn_graph', :v)",
                  {"v": True})
        for ext in citus.extensions.values():
            assert ext.txn_graph is not None
        s.execute("SELECT citus_stat_reset('all')")
        s.execute("UPDATE accounts SET v = v + 1 WHERE k = 1")
        assert _graph_counters(s)["txngraph_txns"] == 1


# ------------------------------------------------------- window ring


class _Clock:
    def __init__(self, t=0.0):
        self.t = t

    def now(self):
        return self.t


class _Session:
    """Bare session stand-in for driving TxnGraph directly."""

    def __init__(self):
        self.in_transaction = False
        self.remote_txns = {}
        self.xid = None
        self._citus_tenant = None


def _graph(width=60.0, nbuckets=4):
    clock = _Clock()
    graph = TxnGraph(clock, StatsRegistry())
    graph.configure(width, nbuckets)
    return graph, clock


class TestWindowRing:
    def test_boundary_exact_statement_end_lands_in_the_new_bucket(self):
        graph, clock = _graph()
        session = _Session()
        clock.t = 10.0
        graph.statement_begin()
        graph.note_access(session, "w1", (1, 0), True, 64)
        clock.t = 60.0  # exactly on the first bucket boundary
        graph.statement_done(session, 0.5)
        buckets = graph.windows.buckets(clock.t)
        assert [b.index for b in buckets] == [0, 1]
        assert buckets[0].statements == 0  # closed bucket stayed empty
        assert buckets[1].statements == 1  # boundary-exact end -> new bucket
        assert buckets[1].txns == 1

    def test_idle_gaps_materialize_as_empty_buckets(self):
        graph, clock = _graph()
        graph.windows.roll(10.0)  # open bucket 0
        buckets = graph.windows.buckets(130.0)  # jump into bucket 2
        assert [b.index for b in buckets] == [0, 1, 2]
        gap = buckets[1]
        assert gap.closed and gap.statements == 0 and gap.counters == {}

    def test_wraparound_retains_only_the_newest_n_buckets(self):
        graph, clock = _graph(width=60.0, nbuckets=4)
        for index in range(7):
            graph.windows.roll(index * 60.0)
        buckets = graph.windows.buckets(6 * 60.0)
        assert [b.index for b in buckets] == [3, 4, 5, 6]
        assert len(buckets) == 4  # retention = ring + current

    def test_far_jump_does_not_create_unbounded_gap_buckets(self):
        graph, clock = _graph(width=60.0, nbuckets=4)
        graph.windows.roll(0.0)
        buckets = graph.windows.buckets(1_000_000.0)
        assert len(buckets) <= 4
        assert buckets[-1].index == int(1_000_000.0 / 60.0)

    def test_reset_mid_bucket_reopens_with_fresh_baseline(self):
        graph, clock = _graph()
        session = _Session()
        clock.t = 10.0
        graph.statement_begin()
        graph.note_access(session, "w1", (1, 0), True, 64)
        clock.t = 11.0
        graph.statement_done(session, 0.5)
        graph.reset_windows()
        clock.t = 12.0  # still inside bucket 0's interval
        buckets = graph.windows.buckets(clock.t)
        assert len(buckets) == 1 and buckets[0].statements == 0
        # Counters incremented before the reset don't leak into the delta.
        assert graph.windows.bucket_counters(buckets[0]) == {}

    def test_per_bucket_counter_deltas(self):
        graph, clock = _graph()
        session = _Session()
        graph.statement_begin()
        graph.note_access(session, "w1", (1, 0), True, 10)
        graph.statement_done(session, 0.1)  # folds: txngraph_txns += 1
        clock.t = 65.0
        graph.statement_begin()
        graph.note_access(session, "w1", (1, 1), True, 10)
        graph.statement_done(session, 0.1)
        buckets = graph.windows.buckets(clock.t)
        first = graph.windows.bucket_counters(buckets[0])
        second = graph.windows.bucket_counters(buckets[-1])
        assert first["txngraph_txns"] == 1
        assert second["txngraph_txns"] == 1

    def test_reconfigure_resets_only_on_change(self):
        graph, clock = _graph(width=60.0, nbuckets=4)
        graph.windows.roll(10.0)
        graph.configure(60.0, 4)  # no-op
        assert graph.windows.current is not None
        graph.configure(30.0, 4)  # width change drops the ring
        assert graph.windows.current is None

    def test_group_label(self):
        assert group_label((3, 7)) == "c3.s7"
        assert group_label(None) == "?"


# ------------------------------------------------------- determinism


def _seeded_workload(citus) -> None:
    import random

    s = _setup_accounts(citus)
    rng = random.Random(2718)
    keys = list(range(1, 65))
    for _ in range(40):
        k1, k2 = rng.sample(keys, 2)
        s.execute("BEGIN")
        s.execute("UPDATE accounts SET v = v + 1 WHERE k = :k", {"k": k1})
        s.execute("UPDATE accounts SET v = v + 1 WHERE k = :k", {"k": k2})
        s.execute("COMMIT")
        s.execute("SELECT v FROM accounts WHERE k = :k", {"k": k1})
    s.execute("SELECT count(*) FROM accounts")


class TestDeterminism:
    def test_same_seed_runs_dump_identical_graph_windows_and_metrics(self):
        dumps = []
        for _ in range(2):
            citus = make_cluster(workers=2, shard_count=8)
            _seeded_workload(citus)
            s = citus.coordinator_session("dump")
            dumps.append({
                "graph": s.execute("SELECT citus_stat_txn_graph('json')").scalar(),
                "edges": s.execute("SELECT citus_stat_txn_graph()").scalar(),
                "windows": s.execute("SELECT citus_stat_windows()").scalar(),
                "metrics": s.execute("SELECT citus_metrics_snapshot()").scalar(),
            })
        assert dumps[0]["graph"] == dumps[1]["graph"]
        assert dumps[0]["edges"] == dumps[1]["edges"]
        assert dumps[0]["windows"] == dumps[1]["windows"]
        assert dumps[0]["metrics"] == dumps[1]["metrics"]


# ----------------------------------------- explain analyze + 2PC spans


class TestObservabilityIntegration:
    def test_multi_shard_dml_explains_cross_shard_fraction(self, citus):
        s = _setup_accounts(citus)
        text = s.execute(
            "SELECT citus_explain_analyze('UPDATE accounts SET v = v + 1')"
        ).scalar()
        assert "Cross-Shard: groups=" in text
        assert "recent_cross_node_fraction=" in text

    def test_single_shard_dml_has_no_cross_shard_line(self, citus):
        s = _setup_accounts(citus)
        text = s.execute(
            "SELECT citus_explain_analyze("
            "'UPDATE accounts SET v = v + 1 WHERE k = 1')"
        ).scalar()
        assert "Cross-Shard:" not in text

    def test_disabled_graph_drops_the_cross_shard_line(self):
        citus = make_cluster(workers=2, shard_count=8,
                             config=CitusConfig(enable_txn_graph=False))
        s = _setup_accounts(citus)
        text = s.execute(
            "SELECT citus_explain_analyze('UPDATE accounts SET v = v + 1')"
        ).scalar()
        assert "Cross-Shard:" not in text

    def test_2pc_spans_carry_access_set_attributes(self, citus):
        s = _setup_accounts(citus)
        k1, k2 = find_keys_on_distinct_nodes(citus, "accounts")
        tracer = citus.coordinator_ext.tracer
        with tracer.capture() as root:
            s.execute("BEGIN")
            s.execute("UPDATE accounts SET v = v + 1 WHERE k = :k", {"k": k1})
            s.execute("UPDATE accounts SET v = v + 1 WHERE k = :k", {"k": k2})
            s.execute("COMMIT")
        events = root.find(cat="2pc", name="2pc.commit_records")
        assert events
        attrs = events[-1].attrs
        assert len(attrs["access_groups"]) == 2
        assert len(attrs["access_nodes"]) == 2
        assert sorted(attrs["access_tenants"]) == sorted([str(k1), str(k2)])

    def test_1pc_span_carries_access_set_attributes(self, citus):
        s = _setup_accounts(citus)
        tracer = citus.coordinator_ext.tracer
        with tracer.capture() as root:
            s.execute("BEGIN")
            s.execute("UPDATE accounts SET v = v + 1 WHERE k = 1")
            s.execute("COMMIT")
        spans = root.find(cat="2pc", name="commit.1pc")
        assert spans
        assert spans[-1].attrs["access_groups"]
        assert spans[-1].attrs["access_tenants"] == ["1"]


# ------------------------------------------------------------ SLO rule


class TestRatioRuleMinRatio:
    def test_two_sided_bounds(self):
        rule = RatioRule("cross fraction", "num", ("den",),
                         max_ratio=0.12, min_ratio=0.03)
        ok = rule.evaluate([], {"num": 7, "den": 100})
        assert ok["passed"] and ok["min_ratio"] == 0.03
        low = rule.evaluate([], {"num": 1, "den": 100})
        assert not low["passed"]
        high = rule.evaluate([], {"num": 20, "den": 100})
        assert not high["passed"]

    def test_default_lower_bound_is_zero(self):
        rule = RatioRule("cap only", "num", ("den",), max_ratio=0.5)
        assert rule.evaluate([], {"num": 0, "den": 100})["passed"]
