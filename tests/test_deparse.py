"""Deparser round-trip tests: parse → deparse → parse → deparse must be a
fixpoint. This property is what lets the distributed planner ship rewritten
queries to workers."""

import pytest

from repro.sql import deparse, parse_one
from repro.sql.deparse import quote_literal

CORPUS = [
    "SELECT 1",
    "SELECT a, b AS bee FROM t",
    "SELECT * FROM t WHERE a = 1 AND b <> 'x' OR c IS NULL",
    "SELECT count(*), sum(v), avg(DISTINCT v) FROM t GROUP BY k HAVING count(*) > 1",
    "SELECT a FROM t ORDER BY a DESC NULLS LAST LIMIT 10 OFFSET 5",
    "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y",
    "SELECT * FROM a JOIN b USING (k, j)",
    "SELECT x FROM (SELECT a AS x FROM t WHERE a > 0) AS sub WHERE x < 10",
    "SELECT i FROM generate_series(1, 5) AS g (i)",
    "WITH w AS (SELECT 1 AS one) SELECT one FROM w",
    "SELECT 1 UNION ALL SELECT 2 UNION SELECT 3",
    "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t",
    "SELECT data->'payload'->>'type' FROM events",
    "SELECT data#>>'{a,b}' FROM events",
    "SELECT x FROM t WHERE x BETWEEN 1 AND 10",
    "SELECT x FROM t WHERE x NOT IN (1, 2) AND y LIKE 'a%'",
    "SELECT x FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
    "SELECT x FROM t WHERE x = ANY (SELECT y FROM u)",
    "SELECT ARRAY[1, 2, 3], arr[1] FROM t",
    "SELECT x::int, CAST(y AS text) FROM t",
    "SELECT extract(year FROM d), date_trunc('day', ts) FROM t",
    "SELECT f(a, named := 2) FROM t",
    "SELECT count(*) FILTER (WHERE x > 0) FROM t",
    "SELECT DISTINCT ON (a) a, b FROM t ORDER BY a",
    "SELECT a FROM t FOR UPDATE",
    "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
    "INSERT INTO t SELECT a, b FROM u WHERE a > 0",
    "INSERT INTO t (k, v) VALUES (1, 2) ON CONFLICT (k) DO UPDATE SET v = excluded.v",
    "INSERT INTO t VALUES (1) ON CONFLICT DO NOTHING",
    "INSERT INTO t VALUES (1) RETURNING a, b",
    "UPDATE t SET a = a + 1, b = 'x' WHERE id = 3 RETURNING *",
    "UPDATE t AS u SET a = 1 WHERE u.id = 2",
    "DELETE FROM t WHERE a IS NOT NULL RETURNING a",
    "CREATE TABLE t (id serial PRIMARY KEY, name text NOT NULL DEFAULT 'x',"
    " ref int REFERENCES u (id), UNIQUE (name), FOREIGN KEY (ref) REFERENCES u (id))",
    "CREATE TABLE IF NOT EXISTS t (a int, b int, PRIMARY KEY (a, b))",
    "CREATE INDEX i ON t (a, b)",
    "CREATE UNIQUE INDEX i ON t (a)",
    "CREATE INDEX i ON t USING gin ((lower(x)))",
    "DROP TABLE IF EXISTS a, b CASCADE",
    "DROP INDEX IF EXISTS i",
    "TRUNCATE TABLE a, b",
    "ALTER TABLE t ADD COLUMN c text DEFAULT 'd'",
    "ALTER TABLE t DROP COLUMN c",
    "BEGIN",
    "COMMIT",
    "ROLLBACK",
    "PREPARE TRANSACTION 'gid_1'",
    "COMMIT PREPARED 'gid_1'",
    "ROLLBACK PREPARED 'gid_1'",
    "COPY t (a, b) FROM STDIN",
    "VACUUM t",
    "CALL proc(1, 'x')",
    "SELECT d + interval '1 day' FROM t",
]


@pytest.mark.parametrize("sql", CORPUS, ids=lambda s: s[:48])
def test_round_trip_fixpoint(sql):
    once = deparse(parse_one(sql))
    twice = deparse(parse_one(once))
    assert once == twice


class TestQuoteLiteral:
    def test_null(self):
        assert quote_literal(None) == "NULL"

    def test_string_escaping(self):
        assert quote_literal("it's") == "'it''s'"

    def test_bool(self):
        assert quote_literal(True) == "true"

    def test_jsonb(self):
        text = quote_literal({"a": 1})
        assert text.endswith("::jsonb")

    def test_roundtrip_through_parser(self):
        import datetime as dt

        from repro.sql import parse_expression
        from repro.engine.expr import EvalContext, evaluate

        for value in [1, 2.5, "x'y", True, None, dt.date(2020, 1, 2), {"k": [1]}]:
            expr = parse_expression(quote_literal(value))
            result = evaluate(expr, EvalContext())
            assert result == value


def test_deparse_shard_rewrite_stays_parseable(citus_session):
    """Every EXPLAIN Task line must itself be parseable SQL."""
    from repro.sql import parse_one as p

    citus_session.execute("CREATE TABLE rt (k int PRIMARY KEY, v jsonb)")
    citus_session.execute("SELECT create_distributed_table('rt', 'k')")
    lines = citus_session.execute(
        "EXPLAIN SELECT k, count(*) FROM rt WHERE v->>'x' ILIKE '%a%' GROUP BY k"
    ).rows
    task_lines = [l[0] for l in lines if l[0].strip().startswith("Task:")]
    assert task_lines
    for line in task_lines:
        p(line.split("Task:", 1)[1].strip())
