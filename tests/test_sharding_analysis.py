"""Unit tests for the query equivalence analysis — the logic that decides
co-location, routing constants, and pushdown legality (§3.5's brain)."""

import pytest

from repro.citus.sharding import analyze_statement, prune_shards
from repro.sql import parse_one


@pytest.fixture
def env(citus, citus_session):
    s = citus_session
    s.execute("CREATE TABLE a (key int PRIMARY KEY, x int)")
    s.execute("SELECT create_distributed_table('a', 'key')")
    s.execute("CREATE TABLE b (key int PRIMARY KEY, y int)")
    s.execute("SELECT create_distributed_table('b', 'key', colocate_with := 'a')")
    s.execute("CREATE TABLE c (ckey int PRIMARY KEY)")
    s.execute("SELECT create_distributed_table('c', 'ckey', colocate_with := 'none')")
    s.execute("CREATE TABLE ref (id int PRIMARY KEY)")
    s.execute("SELECT create_reference_table('ref')")
    ext = citus.coordinator_ext
    return ext, s


def analyze(ext, sql, params=None):
    return analyze_statement(parse_one(sql), ext.metadata.cache, params,
                             ext.instance.catalog)


class TestOccurrenceClassification:
    def test_distributed_vs_reference_vs_local(self, env):
        ext, s = env
        s.execute("CREATE TABLE plain (id int PRIMARY KEY)")
        analysis = analyze(ext, "SELECT * FROM a, ref, plain")
        assert [o.name for o in analysis.distributed] == ["a"]
        assert [o.name for o in analysis.references] == ["ref"]
        assert [o.name for o in analysis.locals] == ["plain"]

    def test_subquery_tables_counted(self, env):
        ext, _ = env
        analysis = analyze(
            ext, "SELECT * FROM (SELECT key FROM a) sub JOIN b ON sub.key = b.key"
        )
        assert {o.name for o in analysis.distributed} == {"a", "b"}


class TestEquivalence:
    def test_join_on_dist_columns_colocates(self, env):
        ext, _ = env
        analysis = analyze(ext, "SELECT * FROM a JOIN b ON a.key = b.key")
        assert analysis.all_dist_columns_equal()

    def test_join_on_other_columns_does_not(self, env):
        ext, _ = env
        analysis = analyze(ext, "SELECT * FROM a JOIN b ON a.x = b.y")
        assert not analysis.all_dist_columns_equal()

    def test_transitive_equality(self, env):
        ext, _ = env
        analysis = analyze(
            ext,
            "SELECT * FROM a, b WHERE a.key = a.x AND a.x = b.key",
        )
        assert analysis.all_dist_columns_equal()

    def test_using_clause_joins_equivalence(self, env):
        ext, _ = env
        analysis = analyze(ext, "SELECT * FROM a JOIN b USING (key)")
        assert analysis.all_dist_columns_equal()

    def test_bare_columns_qualified_by_catalog_scope(self, env):
        ext, _ = env
        # x belongs only to a; y only to b: the bare-name equality binds.
        analysis = analyze(
            ext, "SELECT * FROM a, b WHERE x = y AND a.key = b.key"
        )
        assert analysis.all_dist_columns_equal()

    def test_subquery_output_alias_links(self, env):
        ext, _ = env
        analysis = analyze(
            ext,
            "SELECT * FROM (SELECT key AS k2 FROM a) sub JOIN b ON sub.k2 = b.key",
        )
        assert analysis.all_dist_columns_equal()

    def test_in_subquery_implies_equality(self, env):
        ext, _ = env
        analysis = analyze(
            ext, "SELECT * FROM a WHERE key IN (SELECT key FROM b)"
        )
        assert analysis.all_dist_columns_equal()

    def test_cross_join_not_falsely_colocated(self, env):
        ext, _ = env
        analysis = analyze(ext, "SELECT * FROM a x, a y")
        # Self cross join without a join predicate must NOT claim
        # co-location (it would silently drop cross-shard pairs).
        assert not analysis.all_dist_columns_equal()


class TestConstants:
    def test_direct_constant(self, env):
        ext, _ = env
        analysis = analyze(ext, "SELECT * FROM a WHERE key = 7")
        value, ok = analysis.common_constant()
        assert ok and value == 7

    def test_parameter_constant(self, env):
        ext, _ = env
        analysis = analyze(ext, "SELECT * FROM a WHERE key = $1", params=[9])
        value, ok = analysis.common_constant()
        assert ok and value == 9

    def test_constant_propagates_through_join(self, env):
        ext, _ = env
        analysis = analyze(
            ext, "SELECT * FROM a JOIN b ON a.key = b.key WHERE b.key = 4"
        )
        value, ok = analysis.common_constant()
        assert ok and value == 4

    def test_conflicting_constants_fail(self, env):
        ext, _ = env
        analysis = analyze(
            ext,
            "SELECT * FROM a JOIN b ON a.x = b.y WHERE a.key = 1 AND b.key = 2",
        )
        _value, ok = analysis.common_constant()
        assert not ok

    def test_or_disjunction_gives_no_constant(self, env):
        ext, _ = env
        analysis = analyze(ext, "SELECT * FROM a WHERE key = 1 OR key = 2")
        _value, ok = analysis.common_constant()
        assert not ok  # not a single shard; pushdown handles it


class TestInnerAggregates:
    def test_inner_agg_on_dist_col_allowed(self, env):
        ext, _ = env
        analysis = analyze(
            ext,
            "SELECT avg(c) FROM (SELECT key, count(*) AS c FROM a GROUP BY key) s",
        )
        assert not analysis.inner_cross_shard_agg

    def test_inner_agg_cross_shard_flagged(self, env):
        ext, _ = env
        analysis = analyze(
            ext,
            "SELECT avg(c) FROM (SELECT x, count(*) AS c FROM a GROUP BY x) s",
        )
        assert analysis.inner_cross_shard_agg


class TestPruning:
    def test_equality_prunes_to_one(self, env):
        ext, _ = env
        dist = ext.metadata.cache.get_table("a")
        stmt = parse_one("SELECT * FROM a WHERE key = 5")
        assert len(prune_shards(dist, stmt.where, None, "a")) == 1

    def test_in_list_prunes(self, env):
        ext, _ = env
        dist = ext.metadata.cache.get_table("a")
        stmt = parse_one("SELECT * FROM a WHERE key IN (1, 2, 3)")
        pruned = prune_shards(dist, stmt.where, None, "a")
        assert 1 <= len(pruned) <= 3

    def test_unprunable_predicate_keeps_all(self, env):
        ext, _ = env
        dist = ext.metadata.cache.get_table("a")
        stmt = parse_one("SELECT * FROM a WHERE x > 10")
        assert len(prune_shards(dist, stmt.where, None, "a")) == dist.shard_count

    def test_or_on_dist_col_keeps_all(self, env):
        ext, _ = env
        dist = ext.metadata.cache.get_table("a")
        stmt = parse_one("SELECT * FROM a WHERE key = 1 OR key = 2")
        # Disjunctions are not pruned (conservative, correct).
        assert len(prune_shards(dist, stmt.where, None, "a")) == dist.shard_count


class TestDistributedCopyTo:
    def test_copy_to_reads_all_shards(self, env):
        _ext, s = env
        s.copy_rows("a", [[i, i] for i in range(12)])
        result = s.execute("COPY a TO STDOUT")
        assert result.command == "COPY"
        assert len(result.rows) == 12
