"""Distributed plan cache: replay correctness, invalidation, isolation.

The cache (``repro.citus.planner.plan_cache``) keys entries on the
parameterized *shape* of a statement and replays only the value-dependent
part of planning. These tests pin down the three properties that make
that safe:

- replayed plans re-extract the distribution value per execution, so the
  same cached entry routes different key values to different shards;
- any metadata change (DDL propagation, shard moves) bumps the metadata
  generation and discards stale entries — a cached plan never executes
  against an old placement;
- entries are shared across sessions but plans are rebuilt per execution,
  so concurrent sessions never observe each other's bindings.
"""

import pytest

from repro.citus.observability import explain
from tests.conftest import find_keys_on_distinct_nodes


@pytest.fixture
def s(citus, citus_session):
    s = citus_session
    s.execute("CREATE TABLE t (k int PRIMARY KEY, v int)")
    s.execute("SELECT create_distributed_table('t', 'k')")
    for k in range(1, 17):
        s.execute(f"INSERT INTO t VALUES ({k}, {k * 10})")
    return s


@pytest.fixture
def reg(citus):
    return citus.coordinator_ext.stat_counters


def node_of(citus, table, key):
    from repro.engine.datum import hash_value

    ext = citus.coordinator_ext
    dist = ext.metadata.cache.get_table(table)
    index = dist.shard_index_for_hash(hash_value(key))
    return ext.metadata.cache.placement_node(dist.shards[index].shardid)


def shard_of(citus, table, key):
    from repro.engine.datum import hash_value

    dist = citus.coordinator_ext.metadata.cache.get_table(table)
    return dist.shards[dist.shard_index_for_hash(hash_value(key))]


class TestHitsAndMisses:
    def test_first_execution_misses_then_hits(self, s, reg):
        with reg.measure() as m:
            s.execute("SELECT v FROM t WHERE k = 3")
        assert m.value("plan_cache_misses") == 1
        assert m.value("plan_cache_hits") == 0
        with reg.measure() as m:
            s.execute("SELECT v FROM t WHERE k = 3")
        assert m.value("plan_cache_hits") == 1
        assert m.value("plan_cache_misses") == 0

    def test_different_literals_share_one_entry(self, s, reg):
        s.execute("SELECT v FROM t WHERE k = 1")  # warm
        with reg.measure() as m:
            for key in (2, 3, 4, 5):
                assert s.execute(
                    f"SELECT v FROM t WHERE k = {key}"
                ).scalar() == key * 10
        assert m.value("plan_cache_hits") == 4
        assert m.value("plan_cache_misses") == 0

    def test_bound_parameters_hit_the_same_entry(self, s, reg):
        s.execute("SELECT v FROM t WHERE k = $1", [1])  # warm
        with reg.measure() as m:
            assert s.execute("SELECT v FROM t WHERE k = $1", [7]).scalar() == 70
        assert m.value("plan_cache_hits") == 1

    def test_hit_results_match_fresh_results_for_dml(self, s, reg):
        s.execute("UPDATE t SET v = v + 1 WHERE k = 2")  # warm (miss)
        with reg.measure() as m:
            s.execute("UPDATE t SET v = v + 1 WHERE k = 3")
        assert m.value("plan_cache_hits") == 1
        assert s.execute("SELECT v FROM t WHERE k = 3").scalar() == 31
        assert s.execute("SELECT v FROM t WHERE k = 2").scalar() == 21
        assert s.execute("SELECT v FROM t WHERE k = 4").scalar() == 40

    def test_single_row_insert_replays(self, s, reg):
        s.execute("INSERT INTO t (k, v) VALUES (100, 1)")  # warm
        with reg.measure() as m:
            s.execute("INSERT INTO t (k, v) VALUES (101, 2)")
        assert m.value("plan_cache_hits") == 1
        assert s.execute("SELECT v FROM t WHERE k = 101").scalar() == 2

    def test_multi_shard_aggregate_replays(self, s, reg):
        q = "SELECT count(*), sum(v) FROM t"
        first = s.execute(q).rows  # warm: full plan + skeleton on first hit
        s.execute(q)
        with reg.measure() as m:
            assert s.execute(q).rows == first
        assert m.value("plan_cache_hits") == 1

    def test_counters_surface_through_the_udf(self, s):
        s.execute("SELECT v FROM t WHERE k = 1")
        s.execute("SELECT v FROM t WHERE k = 1")
        rows = s.execute("SELECT citus_stat_counters()").scalar()
        names = {r[0] for r in rows}
        assert "plan_cache_hits" in names
        assert "plan_cache_misses" in names


class TestParamRepruning:
    """One cached entry must route each execution by its own values."""

    def test_same_entry_routes_keys_to_distinct_nodes(self, citus, s, reg):
        k1, k2 = find_keys_on_distinct_nodes(citus, "t")
        s.execute(f"SELECT v FROM t WHERE k = {k1}")  # warm
        with reg.measure() as m:
            e1 = explain(s, f"SELECT v FROM t WHERE k = {k1}")
            e2 = explain(s, f"SELECT v FROM t WHERE k = {k2}")
        assert m.value("plan_cache_hits") == 2
        assert e1.nodes != e2.nodes
        assert e1.nodes == [node_of(citus, "t", k1)]
        assert e2.nodes == [node_of(citus, "t", k2)]

    def test_replayed_task_sql_carries_the_new_value(self, citus, s):
        k1, k2 = find_keys_on_distinct_nodes(citus, "t")
        s.execute(f"SELECT v FROM t WHERE k = {k1}")  # warm
        e = explain(s, f"SELECT v FROM t WHERE k = {k2}")
        assert e.cached
        assert f"= {k2}" in e.tasks[0].sql
        assert shard_of(citus, "t", k2).shard_name in e.tasks[0].sql

    def test_pushdown_dml_prunes_per_execution(self, citus, s, reg):
        k1, k2 = find_keys_on_distinct_nodes(citus, "t")
        # v is not the distribution column, but the planner still prunes on
        # the k equality; warm with one key, replay with the other.
        s.execute(f"UPDATE t SET v = 0 WHERE k = {k1} AND v > -1")
        with reg.measure() as m:
            s.execute(f"UPDATE t SET v = 0 WHERE k = {k2} AND v > -1")
        assert m.value("plan_cache_hits") == 1
        assert s.execute(f"SELECT v FROM t WHERE k = {k2}").scalar() == 0


class TestInvalidation:
    """Metadata changes must discard cached entries (generation bump)."""

    def test_ddl_invalidates(self, s, reg):
        s.execute("SELECT v FROM t WHERE k = 1")
        s.execute("SELECT v FROM t WHERE k = 1")
        s.execute("CREATE INDEX t_v_idx ON t (v)")
        with reg.measure() as m:
            assert s.execute("SELECT v FROM t WHERE k = 1").scalar() == 10
        assert m.value("plan_cache_invalidations") == 1
        assert m.value("plan_cache_hits") == 0
        # ...and the freshly stored entry serves the next execution.
        with reg.measure() as m:
            s.execute("SELECT v FROM t WHERE k = 1")
        assert m.value("plan_cache_hits") == 1

    def test_alter_table_invalidates(self, s, reg):
        s.execute("SELECT v FROM t WHERE k = 1")
        s.execute("SELECT v FROM t WHERE k = 1")
        s.execute("ALTER TABLE t ADD COLUMN note text")
        with reg.measure() as m:
            s.execute("SELECT v FROM t WHERE k = 1")
        assert m.value("plan_cache_invalidations") == 1

    def test_shard_move_invalidates_and_replans_to_new_node(
        self, citus, s, reg
    ):
        key = find_keys_on_distinct_nodes(citus, "t", count=1)[0]
        q = f"SELECT v FROM t WHERE k = {key}"
        s.execute(q)
        old_node = explain(s, q).nodes[0]
        target = "worker2" if old_node == "worker1" else "worker1"
        shardid = shard_of(citus, "t", key).shardid
        s.execute(
            f"SELECT citus_move_shard_placement({shardid}, '{target}')"
        )
        with reg.measure() as m:
            e = explain(s, q)
        assert m.value("plan_cache_invalidations") == 1
        # The replanned statement targets the *new* placement and still
        # finds the row: the cached plan never touched the stale node.
        assert e.nodes == [target]
        assert s.execute(q).scalar() == key * 10

    def test_create_distributed_table_invalidates(self, s, reg):
        s.execute("SELECT v FROM t WHERE k = 1")
        s.execute("SELECT v FROM t WHERE k = 1")
        s.execute("CREATE TABLE u (k int)")
        s.execute("SELECT create_distributed_table('u', 'k')")
        with reg.measure() as m:
            s.execute("SELECT v FROM t WHERE k = 1")
        assert m.value("plan_cache_invalidations") == 1

    def test_stale_entry_is_deleted_not_resurrected(self, citus, s, reg):
        ext = citus.coordinator_ext
        s.execute("SELECT v FROM t WHERE k = 1")
        ext.metadata.bump_generation()
        with reg.measure() as m:
            s.execute("SELECT v FROM t WHERE k = 1")  # invalidate + restore
            s.execute("SELECT v FROM t WHERE k = 1")
        assert m.value("plan_cache_invalidations") == 1
        assert m.value("plan_cache_hits") == 1


class TestSessionIsolation:
    """Entries are shared per coordinator, but never leak bindings."""

    def test_two_sessions_interleave_without_mixing_values(self, citus, s):
        other = citus.coordinator_session("other")
        k1, k2 = find_keys_on_distinct_nodes(citus, "t")
        s.execute(f"SELECT v FROM t WHERE k = {k1}")  # warm from session 1
        for _ in range(3):
            assert other.execute(
                f"SELECT v FROM t WHERE k = {k2}"
            ).scalar() == k2 * 10
            assert s.execute(
                f"SELECT v FROM t WHERE k = {k1}"
            ).scalar() == k1 * 10

    def test_replayed_plans_are_fresh_objects(self, citus, s):
        q = "SELECT v FROM t WHERE k = 5"
        s.execute(q)
        e1 = explain(s, q)
        e2 = explain(s, q)
        assert e1.tasks is not e2.tasks
        assert e1.tasks[0] is not e2.tasks[0]

    def test_transaction_in_one_session_is_invisible_to_cached_reads(
        self, citus, s
    ):
        other = citus.coordinator_session("other")
        q = "SELECT v FROM t WHERE k = 6"
        s.execute(q)  # warm
        other.execute("BEGIN")
        other.execute("UPDATE t SET v = -1 WHERE k = 6")
        assert s.execute(q).scalar() == 60  # uncommitted write not visible
        other.execute("ROLLBACK")
        assert s.execute(q).scalar() == 60


class TestExplainMarker:
    def test_second_explain_is_marked_cached(self, s):
        q = "SELECT v FROM t WHERE k = 3"
        first = explain(s, q)
        second = explain(s, q)
        assert not first.cached
        assert second.cached
        assert "(cached)" not in first.as_text()
        assert "(cached)" in second.as_text()
        assert second.as_dict()["cached"] is True

    def test_uncacheable_tiers_never_carry_the_marker(self, s):
        s.execute("CREATE TABLE r (d int PRIMARY KEY)")
        s.execute("SELECT create_reference_table('r')")
        s.execute("INSERT INTO r VALUES (1)")
        q = "SELECT * FROM r"
        explain(s, q)
        assert not explain(s, q).cached
