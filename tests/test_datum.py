"""Value domain tests: casts, comparison, the sharding hash. Includes
hypothesis property tests for the invariants the distributed layer relies
on (hash determinism and numeric-equivalence hashing)."""

import datetime as dt

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.datum import (
    cast_value,
    compare_values,
    hash_value,
    is_hash_distributable,
    normalize_type,
    sort_key,
    to_text,
)
from repro.errors import DataError


class TestNormalizeType:
    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("INTEGER", "int"),
            ("int4", "int"),
            ("BIGINT", "bigint"),
            ("double precision", "float"),
            ("varchar(64)", "text"),
            ("character varying", "text"),
            ("boolean", "bool"),
            ("timestamptz", "timestamp"),
            ("json", "jsonb"),
            ("text[]", "text[]"),
            ("int []", "int[]"),  # odd spacing normalizes to array
        ],
    )
    def test_aliases(self, alias, canonical):
        assert normalize_type(alias) == canonical

    def test_hash_distributable(self):
        assert is_hash_distributable("int")
        assert is_hash_distributable("varchar(10)")
        assert not is_hash_distributable("jsonb")


class TestCast:
    def test_int_from_string(self):
        assert cast_value("42", "int") == 42

    def test_float(self):
        assert cast_value("3.5", "float") == 3.5

    def test_bool_spellings(self):
        for truthy in ("t", "true", "YES", "on", "1"):
            assert cast_value(truthy, "bool") is True
        for falsy in ("f", "false", "no", "OFF", "0"):
            assert cast_value(falsy, "bool") is False

    def test_bool_invalid(self):
        with pytest.raises(DataError):
            cast_value("maybe", "bool")

    def test_date_from_string(self):
        assert cast_value("2020-01-31", "date") == dt.date(2020, 1, 31)

    def test_date_from_timestamp_string(self):
        assert cast_value("2020-01-31T10:00:00", "date") == dt.date(2020, 1, 31)

    def test_timestamp(self):
        assert cast_value("2020-01-31T10:30:00", "timestamp") == dt.datetime(
            2020, 1, 31, 10, 30
        )

    def test_jsonb_from_string(self):
        assert cast_value('{"a": [1, 2]}', "jsonb") == {"a": [1, 2]}

    def test_jsonb_passthrough(self):
        value = {"k": 1}
        assert cast_value(value, "jsonb") is value

    def test_null_passthrough(self):
        assert cast_value(None, "int") is None

    def test_array_cast(self):
        assert cast_value(["1", "2"], "int[]") == [1, 2]

    def test_text_of_bool(self):
        assert cast_value(True, "text") == "t"

    def test_invalid_int(self):
        with pytest.raises(DataError):
            cast_value("abc", "int")


class TestCompare:
    def test_numeric_cross_type(self):
        assert compare_values(1, 1.0) == 0
        assert compare_values(1, 2.5) < 0

    def test_strings(self):
        assert compare_values("a", "b") < 0

    def test_dates_and_datetimes(self):
        assert compare_values(dt.date(2020, 1, 1), dt.datetime(2020, 1, 1)) == 0
        assert compare_values(dt.date(2020, 1, 2), dt.datetime(2020, 1, 1, 5)) > 0

    def test_sort_key_nulls_last(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=sort_key)
        assert ordered == [1, 2, 3, None, None]

    def test_sort_key_mixed_numerics(self):
        assert sorted([2.5, 1, 3], key=sort_key) == [1, 2.5, 3]


class TestToText:
    def test_bool(self):
        assert to_text(True) == "t"
        assert to_text(False) == "f"

    def test_none_is_empty(self):
        assert to_text(None) == ""

    def test_json_stable(self):
        assert to_text({"b": 1, "a": 2}) == to_text({"a": 2, "b": 1})

    def test_date(self):
        assert to_text(dt.date(2020, 5, 1)) == "2020-05-01"


class TestHash:
    def test_deterministic(self):
        assert hash_value("tenant-42") == hash_value("tenant-42")

    def test_int32_range(self):
        for value in [0, 1, -1, "x", 2**40, dt.date(2020, 1, 1), True]:
            h = hash_value(value)
            assert -(2**31) <= h <= 2**31 - 1

    def test_int_and_equal_float_hash_alike(self):
        # 1::int and 1.0::float co-locate (cross-type hash opfamily).
        assert hash_value(1) == hash_value(1.0)

    def test_bool_not_like_int(self):
        assert hash_value(True) != hash_value(1) or True  # distinct byte tags

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_property_int_hash_stable_and_in_range(self, value):
        h1, h2 = hash_value(value), hash_value(value)
        assert h1 == h2
        assert -(2**31) <= h1 <= 2**31 - 1

    @given(st.text(max_size=50))
    def test_property_text_hash_stable(self, value):
        assert hash_value(value) == hash_value(value)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_int_float_equivalence(self, value):
        assert hash_value(value) == hash_value(float(value))

    def test_spread_over_shard_ranges(self):
        # Hashing 0..999 must not clump into a handful of 32 ranges.
        from repro.citus.metadata import split_hash_ranges

        ranges = split_hash_ranges(32)
        counts = [0] * 32
        for key in range(1000):
            h = hash_value(key)
            for i, (lo, hi) in enumerate(ranges):
                if lo <= h <= hi:
                    counts[i] += 1
                    break
        assert sum(counts) == 1000
        assert sum(1 for c in counts if c > 0) >= 24


class TestCompareProperties:
    @given(st.integers(), st.integers())
    def test_property_compare_antisymmetric(self, a, b):
        assert compare_values(a, b) == -compare_values(b, a)

    @given(st.lists(st.integers() | st.none(), max_size=20))
    def test_property_sort_key_total_order(self, values):
        ordered = sorted(values, key=sort_key)
        non_null = [v for v in ordered if v is not None]
        assert non_null == sorted(non_null)
        # All Nones at the end
        if None in ordered:
            first_none = ordered.index(None)
            assert all(v is None for v in ordered[first_none:])
