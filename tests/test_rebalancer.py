"""Shard rebalancer tests (§3.4): plans, moves, policies, data safety."""

from collections import Counter

import pytest

from repro.citus.rebalancer import (
    BY_DISK_SIZE,
    BY_SHARD_COUNT,
    RebalanceStrategy,
    Rebalancer,
    move_shard,
)


@pytest.fixture
def loaded(citus, citus_session):
    s = citus_session
    s.execute("CREATE TABLE d (k int PRIMARY KEY, v text)")
    s.execute("SELECT create_distributed_table('d', 'k')")
    s.execute("CREATE TABLE e (k int PRIMARY KEY, n int)")
    s.execute("SELECT create_distributed_table('e', 'k', colocate_with := 'd')")
    s.copy_rows("d", [[i, f"value-{i}"] for i in range(60)])
    s.copy_rows("e", [[i, i] for i in range(60)])
    return s


def placement_counts(citus):
    return Counter(citus.coordinator_ext.metadata.cache.placements.values())


class TestMoveShard:
    def test_move_preserves_data_and_routing(self, citus, loaded):
        s = loaded
        ext = citus.coordinator_ext
        dist = ext.metadata.cache.get_table("d")
        shard = dist.shards[0]
        source = ext.metadata.cache.placement_node(shard.shardid)
        target = "worker2" if source == "worker1" else "worker1"
        before = s.execute("SELECT count(*) FROM d").scalar()
        admin = citus.coordinator_session("admin")
        move_shard(ext, admin, shard.shardid, target)
        assert ext.metadata.cache.placement_node(shard.shardid) == target
        assert s.execute("SELECT count(*) FROM d").scalar() == before

    def test_colocated_shards_move_together(self, citus, loaded):
        ext = citus.coordinator_ext
        cache = ext.metadata.cache
        d, e = cache.get_table("d"), cache.get_table("e")
        shard_d, shard_e = d.shards[2], e.shards[2]
        source = cache.placement_node(shard_d.shardid)
        target = "worker2" if source == "worker1" else "worker1"
        admin = citus.coordinator_session("admin")
        move_shard(ext, admin, shard_d.shardid, target)
        cache = ext.metadata.cache  # reload replaced the cache object
        assert cache.placement_node(shard_d.shardid) == target
        assert cache.placement_node(shard_e.shardid) == target

    def test_source_shard_dropped_after_move(self, citus, loaded):
        ext = citus.coordinator_ext
        dist = ext.metadata.cache.get_table("d")
        shard = dist.shards[1]
        source = ext.metadata.cache.placement_node(shard.shardid)
        target = "worker2" if source == "worker1" else "worker1"
        admin = citus.coordinator_session("admin")
        move_shard(ext, admin, shard.shardid, target)
        assert not citus.cluster.node(source).catalog.has_table(shard.shard_name)
        assert citus.cluster.node(target).catalog.has_table(shard.shard_name)

    def test_move_to_same_node_noop(self, citus, loaded):
        ext = citus.coordinator_ext
        dist = ext.metadata.cache.get_table("d")
        shard = dist.shards[0]
        node = ext.metadata.cache.placement_node(shard.shardid)
        admin = citus.coordinator_session("admin")
        move_shard(ext, admin, shard.shardid, node)
        assert ext.metadata.cache.placement_node(shard.shardid) == node

    def test_writes_resume_after_move(self, citus, loaded):
        s = loaded
        ext = citus.coordinator_ext
        dist = ext.metadata.cache.get_table("d")
        shard = dist.shards[0]
        source = ext.metadata.cache.placement_node(shard.shardid)
        target = "worker2" if source == "worker1" else "worker1"
        admin = citus.coordinator_session("admin")
        move_shard(ext, admin, shard.shardid, target)
        # A key hashed to the moved shard routes to the new placement.
        lo, hi = shard.min_value, shard.max_value
        from repro.engine.datum import hash_value

        key = next(k for k in range(10_000) if lo <= hash_value(k) <= hi)
        s.execute("INSERT INTO d VALUES ($1, 'post-move') ON CONFLICT (k)"
                  " DO UPDATE SET v = 'post-move'", [key])
        assert s.execute("SELECT v FROM d WHERE k = $1", [key]).scalar() == "post-move"


class TestRebalance:
    def test_rebalance_after_adding_node(self, citus, loaded):
        citus.add_worker("worker3")
        admin = citus.coordinator_session("admin")
        moves = Rebalancer(citus.coordinator_ext).rebalance(admin)
        assert moves
        counts = placement_counts(citus)
        assert counts["worker3"] > 0
        assert max(counts.values()) - min(counts.values()) <= 2
        assert loaded.execute("SELECT count(*) FROM d").scalar() == 60

    def test_balanced_cluster_plans_nothing(self, citus, loaded):
        plan = Rebalancer(citus.coordinator_ext).plan()
        assert plan == []

    def test_rebalance_by_size(self, citus, loaded):
        citus.add_worker("worker3")
        admin = citus.coordinator_session("admin")
        moves = Rebalancer(citus.coordinator_ext, BY_DISK_SIZE).rebalance(admin)
        assert moves
        assert loaded.execute("SELECT count(*) FROM d").scalar() == 60

    def test_custom_constraint_policy(self, citus, loaded):
        citus.add_worker("worker3")
        # Nothing may move to worker3: the plan must respect the constraint.
        strategy = RebalanceStrategy(
            name="avoid-worker3",
            shard_allowed_on_node=lambda ext, shard, node: node != "worker3",
        )
        plan = Rebalancer(citus.coordinator_ext, strategy).plan()
        assert all(m.target != "worker3" for m in plan)

    def test_custom_capacity_policy(self, citus, loaded):
        citus.add_worker("worker3")
        # worker3 has double capacity: it should end up with >= others.
        strategy = RebalanceStrategy(
            name="big-worker3",
            node_capacity=lambda ext, node: 2.0 if node == "worker3" else 1.0,
        )
        admin = citus.coordinator_session("admin")
        Rebalancer(citus.coordinator_ext, strategy).rebalance(admin)
        counts = placement_counts(citus)
        assert counts["worker3"] >= max(counts["worker1"], counts["worker2"]) - 1

    def test_rebalance_udf(self, citus, loaded):
        citus.add_worker("worker3")
        admin = citus.coordinator_session("admin")
        moved = admin.execute("SELECT rebalance_table_shards()").scalar()
        assert moved > 0

    def test_clock_advances_during_move(self, citus, loaded):
        citus.add_worker("worker3")
        before = citus.cluster.clock.now()
        admin = citus.coordinator_session("admin")
        Rebalancer(citus.coordinator_ext).rebalance(admin)
        # Each move includes a catch-up window of ~2s simulated.
        assert citus.cluster.clock.now() > before + 1.0
