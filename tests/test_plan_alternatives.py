"""Candidate-plan pipeline: citus_plan_alternatives(), structured
rejection reasons, cache-hit search replay, and join-order alternatives.

The §3.5 cascade used to throw away everything it considered; with
``citus.enable_plan_alternatives`` on (the default) every planned
statement leaves behind a PlanSearch — tiers tried in order, each tier's
accept/reject decision with a machine-readable reason code, and every
costed join-order candidate.
"""

import json

import pytest

from repro.citus.observability import explain
from repro.errors import UnsupportedDistributedQuery
from repro.sql import parse


@pytest.fixture
def s(citus, citus_session):
    s = citus_session
    s.execute("CREATE TABLE a (k int, v int)")
    s.execute("SELECT create_distributed_table('a', 'k')")
    s.execute("CREATE TABLE d (d int, note text)")
    s.execute("SELECT create_distributed_table('d', 'd')")
    for k in range(1, 9):
        s.execute(f"INSERT INTO a VALUES ({k}, {9 - k})")
        s.execute(f"INSERT INTO d VALUES ({k}, 'n{k}')")
    return s


JOIN_SQL = "SELECT count(*) FROM a JOIN d ON a.v = d.d"


def plan_alternatives(s, sql=None):
    if sql is None:
        raw = s.execute("SELECT citus_plan_alternatives()").rows[0][0]
    else:
        raw = s.execute("SELECT citus_plan_alternatives($1)", [sql]).rows[0][0]
    return json.loads(raw)


class TestJoinOrderAlternatives:
    """A non-co-located join surfaces every strategy the planner costed."""

    def test_two_or_more_costed_candidates(self, s):
        search = plan_alternatives(s, JOIN_SQL)
        costed = [c for c in search["candidates"] if c["cost"] is not None]
        assert len(costed) >= 2
        assert all(c["tier"] == "join_order" for c in costed)
        strategies = {c["attrs"]["strategy"] for c in costed}
        assert {"repartition", "broadcast"} <= strategies

    def test_chosen_is_cheapest(self, s):
        search = plan_alternatives(s, JOIN_SQL)
        costed = [c for c in search["candidates"] if c["cost"] is not None]
        chosen = [c for c in costed if c["status"] == "chosen"]
        assert len(chosen) == 1
        assert chosen[0]["cost"] == min(c["cost"] for c in costed)
        assert search["cost_ratio"] == 1.0
        assert search["best_alternative_cost"] >= search["chosen_cost"]

    def test_rejections_on_the_way_down(self, s):
        """fast_path, router, and pushdown each record a structured
        rejection before join_order wins."""
        search = plan_alternatives(s, JOIN_SQL)
        assert search["tiers_tried"] == [
            "fast_path", "router", "pushdown", "join_order",
        ]
        rejections = {
            c["tier"]: c["rejection"]["code"]
            for c in search["candidates"] if c["status"] == "rejected"
        }
        assert rejections["fast_path"] == "shape"
        assert rejections["router"] == "no_common_constant"
        assert rejections["pushdown"] == "non_colocated_join"

    def test_explain_renders_considered_lines(self, s):
        text = explain(s, JOIN_SQL).as_text()
        assert "Considered: fast_path rejected [shape]" in text
        assert "Considered: join_order chosen cost=" in text
        assert "Considered: join_order alternative cost=" in text

    def test_repartition_plan_explain_lines(self, s):
        """The executable plan's own EXPLAIN carries the costed strategy
        comparison (satellite: 'Join strategy considered')."""
        plan = s.instance.hooks.call_planner(s, parse(JOIN_SQL)[0], None)
        lines = plan.explain_lines()
        considered = [l for l in lines if "Join strategy considered:" in l]
        assert len(considered) == 1
        assert "repartition(" in considered[0]
        assert "broadcast(" in considered[0]
        assert "cost=" in considered[0]


class TestUnsupportedShapes:
    """Unplannable queries still raise, but the search explains why every
    tier passed."""

    BAD_SQL = ("SELECT count(*) FROM a JOIN d ON a.v = d.d"
               " JOIN a a2 ON a2.k = d.note")

    def test_statement_still_raises(self, s):
        with pytest.raises(UnsupportedDistributedQuery):
            s.execute(self.BAD_SQL)

    def test_search_records_error_and_rejections(self, s):
        search = plan_alternatives(s, self.BAD_SQL)
        assert "could not produce a distributed plan" in search["error"]
        assert search["chosen_tier"] is None
        codes = {
            c["tier"]: c["rejection"]["code"]
            for c in search["candidates"] if c["status"] == "rejected"
        }
        assert set(codes) == {"fast_path", "router", "pushdown", "join_order"}
        assert codes["join_order"] == "shape"

    def test_failed_statement_lands_in_ring_buffer(self, s, citus):
        with pytest.raises(UnsupportedDistributedQuery):
            s.execute(self.BAD_SQL)
        last = citus.coordinator_ext.plan_searches[-1]
        assert last.error is not None
        assert last.chosen is None


class TestCacheReplay:
    """Plan-cache hits replay the original search, marked cached."""

    def test_hit_replays_search(self, s, citus):
        s.execute("SELECT * FROM a WHERE k = 3")
        s.execute("SELECT * FROM a WHERE k = 5")
        ext = citus.coordinator_ext
        miss, hit = ext.plan_searches[-2], ext.plan_searches[-1]
        assert miss.cached is False
        assert hit.cached is True
        assert hit.chosen_tier == miss.chosen_tier == "fast_path"
        assert hit.fingerprint == miss.fingerprint
        # The replay shares the original candidates — same decisions.
        assert [c.as_dict() for c in hit.candidates] == \
            [c.as_dict() for c in miss.candidates]

    def test_no_arg_udf_dumps_ring_buffer(self, s):
        s.execute("SELECT * FROM a WHERE k = 3")
        searches = plan_alternatives(s)
        assert searches
        assert searches[-1]["chosen_tier"] == "fast_path"


class TestDisabledGuc:
    """citus.enable_plan_alternatives = off keeps the hot path bare."""

    def test_no_search_recorded(self, s, citus):
        ext = citus.coordinator_ext
        ext.config.enable_plan_alternatives = False
        before = len(ext.plan_searches)
        s.execute("SELECT * FROM a WHERE k = 3")
        assert len(ext.plan_searches) == before
        assert explain(s, "SELECT * FROM a WHERE k = 4").considered == []

    def test_udf_reports_off(self, s, citus):
        citus.coordinator_ext.config.enable_plan_alternatives = False
        search = plan_alternatives(s, JOIN_SQL)
        assert search == {"error": "citus.enable_plan_alternatives is off"}


class TestDisabledTiers:
    """citus.planner_disabled_tiers skips cascade tiers with a recorded
    'disabled' rejection — the plan-quality gate's downgrade lever."""

    def test_fast_path_disabled_falls_to_router(self, s, citus):
        citus.coordinator_ext.config.planner_disabled_tiers = "fast_path"
        search = plan_alternatives(s, "SELECT * FROM a WHERE k = 3")
        assert search["chosen_tier"] == "router"
        rejected = search["candidates"][0]
        assert rejected["tier"] == "fast_path"
        assert rejected["rejection"]["code"] == "disabled"

    def test_guc_settable_via_udf(self, s, citus):
        s.execute(
            "SELECT citus_set_config('planner_disabled_tiers', 'fast_path')"
        )
        assert (citus.coordinator_ext.config.planner_disabled_tiers
                == "fast_path")
        search = plan_alternatives(s, "SELECT * FROM a WHERE k = 3")
        assert search["chosen_tier"] == "router"
