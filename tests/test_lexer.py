"""Tokenizer unit tests."""

import pytest

from repro.errors import SyntaxErrorSQL
from repro.sql.lexer import EOF, NUMBER, OP, PARAM, STRING, WORD, tokenize


def kinds(sql):
    return [t.kind for t in tokenize(sql)][:-1]


def values(sql):
    return [t.value for t in tokenize(sql)][:-1]


class TestBasicTokens:
    def test_keywords_are_lowercased_words(self):
        assert values("SELECT FROM WhErE") == ["select", "from", "where"]

    def test_identifier_with_underscore_and_digits(self):
        assert values("tbl_1 _x a2b") == ["tbl_1", "_x", "a2b"]

    def test_quoted_identifier_preserves_case(self):
        tokens = tokenize('"MixedCase"')
        assert tokens[0].kind == WORD
        assert tokens[0].value == "MixedCase"

    def test_integer_and_float(self):
        assert values("42 3.14 .5 1e3 2.5e-2") == [42, 3.14, 0.5, 1000.0, 0.025]

    def test_number_types(self):
        tokens = tokenize("1 1.0")
        assert isinstance(tokens[0].value, int)
        assert isinstance(tokens[1].value, float)

    def test_string_literal(self):
        assert values("'hello'") == ["hello"]

    def test_string_with_doubled_quote(self):
        assert values("'it''s'") == ["it's"]

    def test_e_string_escapes(self):
        assert values(r"E'a\nb'") == ["a\nb"]

    def test_dollar_quoted_string(self):
        assert values("$$body text$$") == ["body text"]

    def test_tagged_dollar_quoted_string(self):
        assert values("$fn$x $$ y$fn$") == ["x $$ y"]


class TestOperators:
    def test_multi_char_operators(self):
        assert values("a::int") == ["a", "::", "int"]
        assert values("a <> b != c") == ["a", "<>", "b", "!=", "c"]
        assert values("x->'k'") == ["x", "->", "k"]
        assert values("x->>'k'") == ["x", "->>", "k"]
        assert values("a || b") == ["a", "||", "b"]
        assert values("j @> k") == ["j", "@>", "k"]
        assert values("name := 1") == ["name", ":=", 1]

    def test_json_path_operators(self):
        assert values("d #> p") == ["d", "#>", "p"]
        assert values("d #>> p") == ["d", "#>>", "p"]

    def test_regex_operators(self):
        assert values("a ~ b ~* c !~ d") == ["a", "~", "b", "~*", "c", "!~", "d"]


class TestParameters:
    def test_positional_parameter(self):
        tokens = tokenize("$1 $23")
        assert [t.kind for t in tokens[:-1]] == [PARAM, PARAM]
        assert [t.value for t in tokens[:-1]] == [1, 23]

    def test_named_parameter(self):
        tokens = tokenize(":key1")
        assert tokens[0].kind == PARAM
        assert tokens[0].value == "key1"

    def test_cast_is_not_named_parameter(self):
        assert values("a::text") == ["a", "::", "text"]


class TestComments:
    def test_line_comment(self):
        assert values("SELECT 1 -- comment\n+ 2") == ["select", 1, "+", 2]

    def test_block_comment(self):
        assert values("SELECT /* hi */ 1") == ["select", 1]

    def test_unterminated_block_comment(self):
        with pytest.raises(SyntaxErrorSQL):
            tokenize("SELECT /* oops")

    def test_unterminated_string(self):
        with pytest.raises(SyntaxErrorSQL):
            tokenize("SELECT 'oops")


class TestEdgeCases:
    def test_empty_input(self):
        assert tokenize("")[0].kind == EOF

    def test_whitespace_only(self):
        assert tokenize("  \n\t ")[0].kind == EOF

    def test_adjacent_punctuation(self):
        assert values("f(a,b)") == ["f", "(", "a", ",", "b", ")"]

    def test_unexpected_character(self):
        with pytest.raises(SyntaxErrorSQL):
            tokenize("SELECT \x01")
