"""Chaos testing for distributed atomicity: random failure injection over
a stream of cross-shard transactions must never break the money-conservation
invariant once recovery has run (§3.7.2's core claim)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import make_cluster
from repro.errors import ReproError
from repro.workloads import pgbench


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_invariant_survives_random_failpoints(seed):
    """Random subset of transactions freezes between 2PC phases; after the
    recovery daemon runs, the cross-table invariant holds exactly."""
    rng = random.Random(seed)
    citus = make_cluster(2, shard_count=8)
    s = citus.coordinator_session()
    cfg = pgbench.PgbenchConfig(rows=30, seed=seed)
    pgbench.create_schema(s)
    pgbench.load_data(s, cfg)
    ext = citus.coordinator_ext
    driver = pgbench.PgbenchDriver(s, cfg, same_key=False)
    reg = ext.stat_counters
    with reg.measure() as m:
        for i in range(25):
            ext.failpoints["skip_commit_prepared"] = rng.random() < 0.3
            try:
                driver.run_one()
            except ReproError:
                # In-doubt prepared transactions legitimately hold row locks
                # until recovery resolves them; the conflicting txn fails.
                try:
                    s.execute("ROLLBACK")
                except ReproError:
                    pass
            if rng.random() < 0.2:
                # The maintenance daemon runs concurrently in real deployments.
                ext.failpoints.clear()
                citus.run_maintenance()
        ext.failpoints.clear()
        citus.run_maintenance()
    assert pgbench.invariant_sum(s) == 0
    # Counter conservation: with no crashes, every successful PREPARE was
    # resolved exactly once — in phase two, by an eager abort, or by the
    # recovery daemon.
    resolved = (m.value("twopc_commit_prepared") + m.value("twopc_rollback_prepared")
                + m.value("recovery_committed") + m.value("recovery_aborted"))
    assert resolved == m.value("twopc_prepares")
    assert sum(len(citus.cluster.node(n).prepared_txns)
               for n in citus.cluster.node_names()) == 0
    # Exception-safe gauges: nothing left in flight after the chaos run.
    assert reg.gauge("tasks_in_flight") == 0
    assert reg.gauge("executor_statements_in_flight") == 0


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_invariant_survives_worker_restarts(seed):
    """Sprinkle worker crash/restarts between transactions: committed
    transactions survive (WAL), in-doubt ones resolve via recovery, and the
    invariant holds."""
    rng = random.Random(seed)
    citus = make_cluster(2, shard_count=8)
    s = citus.coordinator_session()
    cfg = pgbench.PgbenchConfig(rows=20, seed=seed)
    pgbench.create_schema(s)
    pgbench.load_data(s, cfg)
    ext = citus.coordinator_ext
    driver = pgbench.PgbenchDriver(s, cfg, same_key=False)
    completed = 0
    for i in range(20):
        ext.failpoints["skip_commit_prepared"] = rng.random() < 0.25
        try:
            driver.run_one()
            completed += 1
        except ReproError:
            # A transaction may legitimately fail if it races a restart;
            # atomicity, not availability, is the property under test.
            try:
                s.execute("ROLLBACK")
            except ReproError:
                pass
        if rng.random() < 0.2:
            victim = rng.choice(citus.worker_names())
            citus.cluster.node(victim).crash()
            citus.cluster.node(victim).restart()
            ext._utility_connections.clear()
            # Cached coordinator connections to the old incarnation die;
            # drop them so later statements reconnect.
            from repro.citus.executor.placement import SessionPools

            SessionPools.for_session(s, ext).close_all()
    ext.failpoints.clear()
    reg = ext.stat_counters
    with reg.measure() as m:
        citus.run_maintenance()
        citus.run_maintenance()  # second pass GCs and settles everything
    assert m.value("recovery_rounds") == 2
    fresh = citus.coordinator_session("verifier")
    s1 = fresh.execute("SELECT coalesce(sum(v), 0) FROM a1").scalar()
    s2 = fresh.execute("SELECT coalesce(sum(v), 0) FROM a2").scalar()
    assert (s1 or 0) + (s2 or 0) == 0
    assert completed > 0
    # After recovery no in-doubt transaction remains anywhere, and the
    # in-flight gauges unwound through every crash and failed statement.
    assert sum(len(citus.cluster.node(n).prepared_txns)
               for n in citus.cluster.node_names()) == 0
    assert reg.gauge("tasks_in_flight") == 0
    assert reg.gauge("executor_statements_in_flight") == 0
