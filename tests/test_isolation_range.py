"""Tenant isolation (§2.1) and range-partitioned tables (§3.3.1)."""

import pytest

from repro.citus.rebalancer import move_shard
from repro.engine.datum import hash_value
from repro.errors import MetadataError


@pytest.fixture
def tenants(citus, citus_session):
    s = citus_session
    s.execute("CREATE TABLE tenants (tid int PRIMARY KEY, name text)")
    s.execute("SELECT create_distributed_table('tenants', 'tid')")
    s.execute("CREATE TABLE docs (tid int, did int, PRIMARY KEY (tid, did))")
    s.execute("SELECT create_distributed_table('docs', 'tid', colocate_with := 'tenants')")
    s.copy_rows("tenants", [[i, f"t{i}"] for i in range(30)])
    s.copy_rows("docs", [[i, d] for i in range(30) for d in range(2)])
    return s


class TestTenantIsolation:
    def test_split_creates_single_value_shard(self, citus, tenants):
        s = tenants
        shardid = s.execute(
            "SELECT isolate_tenant_to_new_shard('tenants', 7)"
        ).scalar()
        dist = citus.coordinator_ext.metadata.cache.get_table("tenants")
        shard = next(x for x in dist.shards if x.shardid == shardid)
        assert shard.min_value == shard.max_value == hash_value(7)

    def test_all_data_preserved(self, citus, tenants):
        s = tenants
        before = s.execute("SELECT count(*) FROM docs").scalar()
        s.execute("SELECT isolate_tenant_to_new_shard('tenants', 7)")
        assert s.execute("SELECT count(*) FROM docs").scalar() == before
        assert s.execute("SELECT count(*) FROM tenants").scalar() == 30
        assert s.execute("SELECT name FROM tenants WHERE tid = 7").scalar() == "t7"

    def test_colocated_tables_split_together(self, citus, tenants):
        s = tenants
        s.execute("SELECT isolate_tenant_to_new_shard('tenants', 7)")
        cache = citus.coordinator_ext.metadata.cache
        t, d = cache.get_table("tenants"), cache.get_table("docs")
        assert t.shard_count == d.shard_count
        for st, sd in zip(t.shards, d.shards):
            assert (st.min_value, st.max_value) == (sd.min_value, sd.max_value)

    def test_colocated_join_still_works(self, citus, tenants):
        s = tenants
        s.execute("SELECT isolate_tenant_to_new_shard('tenants', 7)")
        rows = s.execute(
            "SELECT t.tid, count(*) FROM tenants t JOIN docs d ON t.tid = d.tid"
            " GROUP BY t.tid ORDER BY t.tid"
        ).rows
        assert len(rows) == 30 and all(r[1] == 2 for r in rows)

    def test_isolated_shard_can_move_to_own_node(self, citus, tenants):
        s = tenants
        shardid = s.execute(
            "SELECT isolate_tenant_to_new_shard('tenants', 7)"
        ).scalar()
        ext = citus.coordinator_ext
        source = ext.metadata.cache.placement_node(shardid)
        target = "worker2" if source == "worker1" else "worker1"
        move_shard(ext, s, shardid, target)
        assert ext.metadata.cache.placement_node(shardid) == target
        assert s.execute("SELECT name FROM tenants WHERE tid = 7").scalar() == "t7"

    def test_isolating_twice_is_idempotent(self, citus, tenants):
        s = tenants
        first = s.execute("SELECT isolate_tenant_to_new_shard('tenants', 7)").scalar()
        second = s.execute("SELECT isolate_tenant_to_new_shard('tenants', 7)").scalar()
        assert first == second

    def test_writes_route_to_isolated_shard(self, citus, tenants):
        s = tenants
        shardid = s.execute(
            "SELECT isolate_tenant_to_new_shard('tenants', 7)"
        ).scalar()
        s.execute("UPDATE tenants SET name = 'isolated' WHERE tid = 7")
        ext = citus.coordinator_ext
        node = ext.metadata.cache.placement_node(shardid)
        dist = ext.metadata.cache.get_table("tenants")
        shard = next(x for x in dist.shards if x.shardid == shardid)
        check = citus.cluster.node(node).connect()
        assert check.execute(
            f"SELECT name FROM {shard.shard_name} WHERE tid = 7"
        ).scalar() == "isolated"

    def test_reference_table_rejected(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE rt (id int PRIMARY KEY)")
        s.execute("SELECT create_reference_table('rt')")
        with pytest.raises(MetadataError):
            s.execute("SELECT isolate_tenant_to_new_shard('rt', 1)")


class TestRangeDistribution:
    @pytest.fixture
    def ranged(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE events (ts int PRIMARY KEY, v int)")
        s.execute(
            "SELECT create_range_distributed_table('events', 'ts',"
            " ARRAY[ARRAY[0, 99], ARRAY[100, 199], ARRAY[200, 299]])"
        )
        s.copy_rows("events", [[i, i] for i in range(0, 300, 10)])
        return s

    def test_metadata_method(self, citus, ranged):
        dist = citus.coordinator_ext.metadata.cache.get_table("events")
        assert dist.method == "r"
        assert [(x.min_value, x.max_value) for x in dist.shards] == [
            (0, 99), (100, 199), (200, 299)
        ]

    def test_point_queries_route_by_value(self, citus, ranged):
        s = ranged
        assert s.execute("SELECT v FROM events WHERE ts = 150").scalar() == 150
        text = "\n".join(
            r[0] for r in s.execute("EXPLAIN SELECT * FROM events WHERE ts = 150").rows
        )
        assert "Task Count: 1" in text

    def test_range_predicate_prunes_shards(self, citus, ranged):
        s = ranged
        text = "\n".join(
            r[0] for r in s.execute(
                "EXPLAIN SELECT count(*) FROM events WHERE ts >= 100 AND ts < 200"
            ).rows
        )
        assert "Task Count: 1" in text
        assert s.execute(
            "SELECT count(*) FROM events WHERE ts >= 100 AND ts < 200"
        ).scalar() == 10

    def test_between_prunes(self, citus, ranged):
        s = ranged
        text = "\n".join(
            r[0] for r in s.execute(
                "EXPLAIN SELECT count(*) FROM events WHERE ts BETWEEN 50 AND 149"
            ).rows
        )
        assert "Task Count: 2" in text
        assert s.execute(
            "SELECT count(*) FROM events WHERE ts BETWEEN 50 AND 149"
        ).scalar() == 10

    def test_value_outside_ranges_rejected(self, ranged):
        with pytest.raises(MetadataError):
            ranged.execute("INSERT INTO events VALUES (999, 0)")

    def test_overlapping_ranges_rejected(self, citus_session):
        s = citus_session
        s.execute("CREATE TABLE bad (k int PRIMARY KEY)")
        with pytest.raises(MetadataError):
            s.execute(
                "SELECT create_range_distributed_table('bad', 'k',"
                " ARRAY[ARRAY[0, 100], ARRAY[50, 200]])"
            )

    def test_non_integer_column_rejected(self, citus_session):
        s = citus_session
        s.execute("CREATE TABLE bad (k text PRIMARY KEY)")
        with pytest.raises(MetadataError):
            s.execute(
                "SELECT create_range_distributed_table('bad', 'k',"
                " ARRAY[ARRAY[0, 100]])"
            )

    def test_aggregate_across_range_shards(self, ranged):
        assert ranged.execute("SELECT sum(v) FROM events").scalar() == sum(
            range(0, 300, 10)
        )


class TestCitusShardsView:
    def test_monitoring_udf_lists_every_placement(self, citus, tenants):
        rows = tenants.execute("SELECT citus_shards()").scalar()
        ext = citus.coordinator_ext
        expected = sum(
            len(ext.metadata.all_placements(s.shardid))
            for t in ext.metadata.cache.tables.values()
            for s in t.shards
        )
        assert len(rows) == expected
        assert all(len(entry) == 5 for entry in rows)
