"""Storage-layer tests: MVCC visibility, heap vacuum, B-tree / GIN indexes,
lock manager, WAL."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.heap import Heap
from repro.engine.index import BTreeIndex, GinIndex, trigrams
from repro.engine.locks import LockManager, WouldBlock, find_cycle
from repro.engine.mvcc import Snapshot, XidManager, tuple_visible
from repro.engine.wal import WriteAheadLog


class TestMvccVisibility:
    def setup_method(self):
        self.xids = XidManager()

    def test_committed_insert_visible(self):
        writer = self.xids.allocate()
        heap = Heap("t")
        tup = heap.insert([1], writer)
        self.xids.finish(writer, committed=True)
        snap = self.xids.take_snapshot()
        assert tuple_visible(tup.header, snap, self.xids.clog)

    def test_uncommitted_insert_invisible_to_others(self):
        writer = self.xids.allocate()
        heap = Heap("t")
        tup = heap.insert([1], writer)
        snap = self.xids.take_snapshot()  # writer still active
        assert not tuple_visible(tup.header, snap, self.xids.clog)

    def test_own_writes_visible(self):
        writer = self.xids.allocate()
        heap = Heap("t")
        tup = heap.insert([1], writer)
        snap = self.xids.take_snapshot(own_xid=writer)
        assert tuple_visible(tup.header, snap, self.xids.clog)

    def test_aborted_insert_invisible(self):
        writer = self.xids.allocate()
        heap = Heap("t")
        tup = heap.insert([1], writer)
        self.xids.finish(writer, committed=False)
        snap = self.xids.take_snapshot()
        assert not tuple_visible(tup.header, snap, self.xids.clog)

    def test_committed_delete_hides_tuple(self):
        w1 = self.xids.allocate()
        heap = Heap("t")
        tup = heap.insert([1], w1)
        self.xids.finish(w1, committed=True)
        w2 = self.xids.allocate()
        heap.mark_deleted(tup.tid, w2)
        self.xids.finish(w2, committed=True)
        snap = self.xids.take_snapshot()
        assert not tuple_visible(tup.header, snap, self.xids.clog)

    def test_aborted_delete_leaves_tuple_visible(self):
        w1 = self.xids.allocate()
        heap = Heap("t")
        tup = heap.insert([1], w1)
        self.xids.finish(w1, committed=True)
        w2 = self.xids.allocate()
        heap.mark_deleted(tup.tid, w2)
        self.xids.finish(w2, committed=False)
        snap = self.xids.take_snapshot()
        assert tuple_visible(tup.header, snap, self.xids.clog)

    def test_snapshot_taken_before_commit_does_not_see(self):
        writer = self.xids.allocate()
        heap = Heap("t")
        tup = heap.insert([1], writer)
        snap = self.xids.take_snapshot()
        self.xids.finish(writer, committed=True)
        # Snapshot was taken while writer was in progress: still invisible.
        assert not tuple_visible(tup.header, snap, self.xids.clog)

    def test_future_xid_invisible(self):
        snap = self.xids.take_snapshot()
        writer = self.xids.allocate()
        heap = Heap("t")
        tup = heap.insert([1], writer)
        self.xids.finish(writer, committed=True)
        assert not tuple_visible(tup.header, snap, self.xids.clog)

    def test_prepared_txn_stays_invisible(self):
        writer = self.xids.allocate()
        heap = Heap("t")
        tup = heap.insert([1], writer)
        self.xids.mark_prepared(writer)
        snap = self.xids.take_snapshot()
        assert not tuple_visible(tup.header, snap, self.xids.clog)
        self.xids.resolve_prepared(writer, committed=True)
        snap = self.xids.take_snapshot()
        assert tuple_visible(tup.header, snap, self.xids.clog)


class TestHeapVacuum:
    def test_vacuum_removes_dead_versions(self):
        xids = XidManager()
        heap = Heap("t")
        w1 = xids.allocate()
        t1 = heap.insert([1], w1)
        xids.finish(w1, True)
        w2 = xids.allocate()
        heap.mark_deleted(t1.tid, w2)
        heap.insert([2], w2, row_id=t1.row_id)
        xids.finish(w2, True)
        removed = heap.vacuum(xids.next_xid, xids.clog)
        assert removed == 1
        assert len(heap.tuples) == 1
        assert heap.tuples[0].values == [2]

    def test_vacuum_keeps_versions_visible_to_old_snapshots(self):
        xids = XidManager()
        heap = Heap("t")
        w1 = xids.allocate()
        t1 = heap.insert([1], w1)
        xids.finish(w1, True)
        old_reader = xids.allocate()  # long-running txn
        w2 = xids.allocate()
        heap.mark_deleted(t1.tid, w2)
        xids.finish(w2, True)
        removed = heap.vacuum(old_reader, xids.clog)
        assert removed == 0  # xmax >= oldest active: keep

    def test_page_accounting(self):
        heap = Heap("t")
        xids = XidManager()
        w = xids.allocate()
        for i in range(100):
            heap.insert([i, "x" * 100], w)
        assert heap.total_bytes > 100 * 100
        assert heap.page_count >= 2


class TestBTreeIndex:
    def test_insert_and_equal_scan(self):
        index = BTreeIndex(1)
        for i, tid in [(5, 1), (3, 2), (5, 3), (7, 4)]:
            index.insert([i], tid)
        assert index.scan_equal([5]) == [1, 3]

    def test_range_scan(self):
        index = BTreeIndex(1)
        for i in range(10):
            index.insert([i], i + 100)
        assert index.scan_range(3, 6) == [103, 104, 105, 106]
        assert index.scan_range(3, 6, low_inclusive=False) == [104, 105, 106]
        assert index.scan_range(3, 6, high_inclusive=False) == [103, 104, 105]
        assert index.scan_range(None, 2) == [100, 101, 102]
        assert index.scan_range(8, None) == [108, 109]

    def test_composite_prefix_scan(self):
        index = BTreeIndex(2)
        index.insert([1, "a"], 1)
        index.insert([1, "b"], 2)
        index.insert([2, "a"], 3)
        assert index.scan_equal([1]) == [1, 2]
        assert index.scan_equal([1, "b"]) == [2]

    def test_delete(self):
        index = BTreeIndex(1)
        index.insert([1], 10)
        index.insert([1], 11)
        index.delete([1], 10)
        assert index.scan_equal([1]) == [11]

    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=60))
    def test_property_scan_all_is_sorted(self, keys):
        index = BTreeIndex(1)
        for tid, key in enumerate(keys):
            index.insert([key], tid)
        values = [keys[tid] for tid in index.scan_all()]
        assert values == sorted(values)

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=60),
           st.integers(min_value=0, max_value=50),
           st.integers(min_value=0, max_value=50))
    def test_property_range_scan_equals_filter(self, keys, lo, hi):
        index = BTreeIndex(1)
        for tid, key in enumerate(keys):
            index.insert([key], tid)
        got = sorted(index.scan_range(lo, hi))
        expected = sorted(t for t, k in enumerate(keys) if lo <= k <= hi)
        assert got == expected


class TestGinIndex:
    def test_trigram_extraction(self):
        grams = trigrams("fix postgres")
        assert "pos" in grams and "fix" in grams

    def test_substring_search(self):
        index = GinIndex()
        index.insert("fix the postgres planner", 1)
        index.insert("update readme", 2)
        index.insert("postgresql rocks", 3)
        assert index.search_substring("postgres") == {1, 3}

    def test_short_needle_returns_none(self):
        index = GinIndex()
        index.insert("abc", 1)
        assert index.search_substring("ab") is None  # too short: seq scan

    def test_delete(self):
        index = GinIndex()
        index.insert("hello world", 1)
        index.delete("hello world", 1)
        assert index.search_substring("hello") == set()

    def test_candidates_are_superset_not_exact(self):
        # GIN may return false positives (recheck needed), never misses.
        index = GinIndex()
        texts = ["abcdef", "defabc", "xyzabc", "nothing here"]
        for tid, text in enumerate(texts):
            index.insert(text, tid)
        candidates = index.search_substring("abc")
        actual = {t for t, text in enumerate(texts) if "abc" in text}
        assert actual <= candidates


class TestLockManager:
    def test_row_lock_conflict(self):
        locks = LockManager()
        locks.acquire_row("t", 1, xid=10)
        with pytest.raises(WouldBlock):
            locks.acquire_row("t", 1, xid=11)

    def test_row_lock_reentrant(self):
        locks = LockManager()
        locks.acquire_row("t", 1, xid=10)
        locks.acquire_row("t", 1, xid=10)

    def test_row_lock_release_allows_next(self):
        locks = LockManager()
        locks.acquire_row("t", 1, xid=10)
        locks.release_all(10)
        locks.acquire_row("t", 1, xid=11)

    def test_table_lock_conflict_matrix(self):
        locks = LockManager()
        locks.acquire_table("t", "RowExclusive", xid=1)
        locks.acquire_table("t", "RowExclusive", xid=2)  # compatible
        with pytest.raises(WouldBlock):
            locks.acquire_table("t", "AccessExclusive", xid=3)

    def test_access_share_blocks_only_access_exclusive(self):
        locks = LockManager()
        locks.acquire_table("t", "AccessShare", xid=1)
        locks.acquire_table("t", "Exclusive", xid=2)
        with pytest.raises(WouldBlock):
            locks.acquire_table("t", "AccessExclusive", xid=3)

    def test_wait_edges_and_cycle(self):
        locks = LockManager()
        locks.add_wait(1, {2})
        locks.add_wait(2, {3})
        assert locks.find_local_cycle() is None
        locks.add_wait(3, {1})
        cycle = locks.find_local_cycle()
        assert set(cycle) == {1, 2, 3}

    def test_release_clears_wait_edges(self):
        locks = LockManager()
        locks.add_wait(1, {2})
        locks.release_all(2)
        assert locks.wait_graph_edges() == []

    def test_transfer_preserves_locks(self):
        locks = LockManager()
        locks.acquire_row("t", 1, xid=10)
        locks.transfer(10, 20)
        with pytest.raises(WouldBlock):
            locks.acquire_row("t", 1, xid=30)
        locks.acquire_row("t", 1, xid=20)  # new owner re-acquires fine

    @given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=20))
    def test_property_find_cycle_is_real(self, edge_list):
        edges = {}
        for a, b in edge_list:
            if a != b:
                edges.setdefault(a, set()).add(b)
        cycle = find_cycle(edges)
        if cycle is not None:
            # Verify: each consecutive pair is an edge, and it wraps.
            for i, node in enumerate(cycle):
                nxt = cycle[(i + 1) % len(cycle)]
                assert nxt in edges.get(node, set())


class TestWal:
    def test_append_and_lsn_monotonic(self):
        wal = WriteAheadLog()
        r1 = wal.append(1, "insert", {"table": "t"})
        r2 = wal.append(1, "commit")
        assert r2.lsn == r1.lsn + 1

    def test_restore_point_lookup(self):
        wal = WriteAheadLog()
        wal.append(1, "insert", {})
        lsn = wal.create_restore_point("rp")
        wal.append(2, "insert", {})
        assert wal.find_restore_point("rp") == lsn
        assert wal.find_restore_point("missing") is None

    def test_records_until(self):
        wal = WriteAheadLog()
        wal.append(1, "insert", {})
        lsn = wal.create_restore_point("rp")
        wal.append(2, "insert", {})
        assert len(wal.records_until(lsn)) == 2

    def test_clone_is_independent(self):
        wal = WriteAheadLog()
        wal.append(1, "insert", {})
        clone = wal.clone()
        wal.append(2, "insert", {})
        assert len(clone.records) == 1
        assert len(wal.records) == 2

    def test_bytes_accounting_grows(self):
        wal = WriteAheadLog()
        before = wal.bytes_written
        wal.append(1, "insert", {"values": ["x" * 100]})
        assert wal.bytes_written >= before + 64
