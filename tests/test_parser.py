"""Parser unit tests: statement shapes and expression precedence."""

import pytest

from repro.errors import SyntaxErrorSQL
from repro.sql import ast as A
from repro.sql import parse, parse_expression, parse_one


class TestSelect:
    def test_simple_select(self):
        stmt = parse_one("SELECT a, b FROM t")
        assert isinstance(stmt, A.Select)
        assert len(stmt.targets) == 2
        assert isinstance(stmt.from_items[0], A.TableRef)

    def test_star(self):
        stmt = parse_one("SELECT * FROM t")
        assert isinstance(stmt.targets[0].expr, A.Star)

    def test_qualified_star(self):
        stmt = parse_one("SELECT t.* FROM t")
        assert isinstance(stmt.targets[0].expr, A.Star)
        assert stmt.targets[0].expr.table == "t"

    def test_alias_with_and_without_as(self):
        stmt = parse_one("SELECT a AS x, b y FROM t")
        assert stmt.targets[0].alias == "x"
        assert stmt.targets[1].alias == "y"

    def test_where_group_having_order_limit_offset(self):
        stmt = parse_one(
            "SELECT a, count(*) FROM t WHERE a > 1 GROUP BY a"
            " HAVING count(*) > 2 ORDER BY a DESC LIMIT 5 OFFSET 2"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.limit.value == 5
        assert stmt.offset.value == 2

    def test_order_by_nulls(self):
        stmt = parse_one("SELECT a FROM t ORDER BY a ASC NULLS FIRST, b NULLS LAST")
        assert stmt.order_by[0].nulls_first is True
        assert stmt.order_by[1].nulls_first is False

    def test_distinct(self):
        assert parse_one("SELECT DISTINCT a FROM t").distinct

    def test_distinct_on(self):
        stmt = parse_one("SELECT DISTINCT ON (a) a, b FROM t")
        assert stmt.distinct and len(stmt.distinct_on) == 1

    def test_join_types(self):
        stmt = parse_one(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        outer = stmt.from_items[0]
        assert isinstance(outer, A.JoinExpr)
        assert outer.join_type == "left"
        assert outer.left.join_type == "inner"

    def test_join_using(self):
        stmt = parse_one("SELECT * FROM a JOIN b USING (k)")
        assert stmt.from_items[0].using == ["k"]

    def test_cross_join(self):
        stmt = parse_one("SELECT * FROM a CROSS JOIN b")
        assert stmt.from_items[0].join_type == "cross"

    def test_comma_join(self):
        stmt = parse_one("SELECT * FROM a, b, c")
        assert len(stmt.from_items) == 3

    def test_subquery_in_from(self):
        stmt = parse_one("SELECT x FROM (SELECT a AS x FROM t) sub")
        assert isinstance(stmt.from_items[0], A.SubqueryRef)
        assert stmt.from_items[0].alias == "sub"

    def test_function_in_from(self):
        stmt = parse_one("SELECT i FROM generate_series(1, 10) AS g (i)")
        ref = stmt.from_items[0]
        assert isinstance(ref, A.FunctionRef)
        assert ref.alias == "g"
        assert ref.column_names == ["i"]

    def test_cte(self):
        stmt = parse_one("WITH top AS (SELECT a FROM t) SELECT * FROM top")
        assert stmt.ctes[0].name == "top"

    def test_union_all(self):
        stmt = parse_one("SELECT 1 UNION ALL SELECT 2")
        assert stmt.set_ops[0][0] == "union all"

    def test_union_distinct(self):
        stmt = parse_one("SELECT 1 UNION SELECT 2")
        assert stmt.set_ops[0][0] == "union"

    def test_for_update(self):
        assert parse_one("SELECT a FROM t FOR UPDATE").for_update


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_and_or(self):
        expr = parse_expression("a OR b AND c")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_not(self):
        expr = parse_expression("NOT a = b")
        assert isinstance(expr, A.UnaryOp)
        assert expr.op == "not"

    def test_unary_minus_folds_literal(self):
        expr = parse_expression("-5")
        assert isinstance(expr, A.Literal) and expr.value == -5

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expr, A.BetweenExpr)

    def test_not_between(self):
        assert parse_expression("x NOT BETWEEN 1 AND 2").negated

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, A.InList)
        assert len(expr.items) == 3

    def test_in_subquery(self):
        expr = parse_expression("x IN (SELECT a FROM t)")
        assert isinstance(expr, A.SubqueryExpr) and expr.kind == "in"

    def test_exists(self):
        expr = parse_expression("EXISTS (SELECT 1 FROM t)")
        assert expr.kind == "exists"

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT max(a) FROM t)")
        assert expr.kind == "scalar"

    def test_any_subquery(self):
        expr = parse_expression("x = ANY (SELECT a FROM t)")
        assert expr.kind == "any" and expr.op == "="

    def test_case_searched(self):
        expr = parse_expression("CASE WHEN a THEN 1 WHEN b THEN 2 ELSE 3 END")
        assert len(expr.whens) == 2
        assert expr.else_result.value == 3

    def test_case_with_operand(self):
        expr = parse_expression("CASE x WHEN 1 THEN 'one' END")
        assert expr.operand is not None

    def test_cast_postfix(self):
        expr = parse_expression("a::int")
        assert isinstance(expr, A.Cast) and expr.type_name == "int"

    def test_cast_function(self):
        expr = parse_expression("CAST(a AS double precision)")
        assert expr.type_name == "double precision"

    def test_typed_literal(self):
        expr = parse_expression("date '2020-01-01'")
        assert isinstance(expr, A.Cast) and expr.type_name == "date"

    def test_json_chain(self):
        expr = parse_expression("data->'payload'->>'type'")
        assert expr.op == "->>"
        assert expr.left.op == "->"

    def test_is_null(self):
        assert isinstance(parse_expression("x IS NULL"), A.IsNull)
        assert parse_expression("x IS NOT NULL").negated

    def test_is_distinct_from(self):
        expr = parse_expression("a IS DISTINCT FROM b")
        assert isinstance(expr, A.UnaryOp)
        expr2 = parse_expression("a IS NOT DISTINCT FROM b")
        assert isinstance(expr2, A.FuncCall)

    def test_like_ilike(self):
        assert parse_expression("a LIKE 'x%'").op == "like"
        assert parse_expression("a ILIKE '%y'").op == "ilike"

    def test_not_like(self):
        expr = parse_expression("a NOT LIKE 'x'")
        assert isinstance(expr, A.UnaryOp) and expr.op == "not"

    def test_array_literal(self):
        expr = parse_expression("ARRAY[1, 2, 3]")
        assert isinstance(expr, A.ArrayExpr)

    def test_subscript(self):
        expr = parse_expression("arr[2]")
        assert expr.name == "_subscript"

    def test_count_star(self):
        expr = parse_expression("count(*)")
        assert isinstance(expr.args[0], A.Star)

    def test_count_distinct(self):
        assert parse_expression("count(DISTINCT x)").distinct

    def test_filter_clause(self):
        expr = parse_expression("count(*) FILTER (WHERE x > 1)")
        assert expr.filter is not None

    def test_named_argument(self):
        expr = parse_expression("f(a, opt := 5)")
        assert expr.args[1].name == "_named_arg"

    def test_extract(self):
        expr = parse_expression("extract(year FROM d)")
        assert expr.name == "extract"
        assert expr.args[0].value == "year"

    def test_interval(self):
        expr = parse_expression("interval '1 day'")
        assert expr.name == "interval"

    def test_params(self):
        assert parse_expression("$3").index == 3
        assert parse_expression(":name").name == "name"


class TestDml:
    def test_insert_values(self):
        stmt = parse_one("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_one("INSERT INTO t SELECT * FROM u")
        assert stmt.select is not None

    def test_insert_on_conflict_nothing(self):
        stmt = parse_one("INSERT INTO t VALUES (1) ON CONFLICT DO NOTHING")
        assert stmt.on_conflict.action == "nothing"

    def test_insert_on_conflict_update(self):
        stmt = parse_one(
            "INSERT INTO t (k, v) VALUES (1, 2) ON CONFLICT (k)"
            " DO UPDATE SET v = excluded.v"
        )
        assert stmt.on_conflict.action == "update"
        assert stmt.on_conflict.columns == ["k"]

    def test_insert_returning(self):
        stmt = parse_one("INSERT INTO t VALUES (1) RETURNING *")
        assert stmt.returning

    def test_update(self):
        stmt = parse_one("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_update_with_alias(self):
        assert parse_one("UPDATE t AS x SET a = 1").alias == "x"

    def test_delete(self):
        stmt = parse_one("DELETE FROM t WHERE a < 0 RETURNING a")
        assert stmt.where is not None and stmt.returning


class TestDdl:
    def test_create_table(self):
        stmt = parse_one(
            "CREATE TABLE t (id serial PRIMARY KEY, name text NOT NULL,"
            " age int DEFAULT 0, tag varchar(10) UNIQUE)"
        )
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[2].default.value == 0
        assert stmt.columns[3].unique

    def test_create_table_composite_pk(self):
        stmt = parse_one("CREATE TABLE t (a int, b int, PRIMARY KEY (a, b))")
        assert stmt.primary_key == ["a", "b"]

    def test_create_table_fk_inline(self):
        stmt = parse_one("CREATE TABLE t (a int REFERENCES u (id))")
        assert stmt.columns[0].references == ("u", "id")

    def test_create_table_fk_table_level(self):
        stmt = parse_one(
            "CREATE TABLE t (a int, b int, FOREIGN KEY (a, b) REFERENCES u (x, y))"
        )
        assert stmt.foreign_keys[0].columns == ["a", "b"]

    def test_create_table_if_not_exists(self):
        assert parse_one("CREATE TABLE IF NOT EXISTS t (a int)").if_not_exists

    def test_create_table_using(self):
        assert parse_one("CREATE TABLE t (a int) USING columnar").using == "columnar"

    def test_create_index(self):
        stmt = parse_one("CREATE INDEX i ON t (a, b)")
        assert stmt.table == "t" and len(stmt.exprs) == 2

    def test_create_unique_index(self):
        assert parse_one("CREATE UNIQUE INDEX i ON t (a)").unique

    def test_create_gin_expression_index(self):
        stmt = parse_one(
            "CREATE INDEX i ON t USING gin ((lower(name)) gin_trgm_ops)"
        )
        assert stmt.using == "gin"
        assert isinstance(stmt.exprs[0], A.FuncCall)

    def test_drop_table(self):
        stmt = parse_one("DROP TABLE IF EXISTS a, b CASCADE")
        assert stmt.names == ["a", "b"] and stmt.if_exists and stmt.cascade

    def test_alter_add_column(self):
        stmt = parse_one("ALTER TABLE t ADD COLUMN c text")
        assert stmt.action == "add_column"

    def test_alter_drop_column(self):
        assert parse_one("ALTER TABLE t DROP COLUMN c").action == "drop_column"

    def test_truncate(self):
        assert parse_one("TRUNCATE TABLE a, b").names == ["a", "b"]


class TestTransactionsAndUtility:
    def test_txn_control(self):
        assert isinstance(parse_one("BEGIN"), A.Begin)
        assert isinstance(parse_one("START TRANSACTION"), A.Begin)
        assert isinstance(parse_one("COMMIT"), A.Commit)
        assert isinstance(parse_one("END"), A.Commit)
        assert isinstance(parse_one("ROLLBACK"), A.Rollback)
        assert isinstance(parse_one("ABORT"), A.Rollback)

    def test_two_phase_commit_statements(self):
        assert parse_one("PREPARE TRANSACTION 'g1'").gid == "g1"
        assert parse_one("COMMIT PREPARED 'g1'").gid == "g1"
        assert parse_one("ROLLBACK PREPARED 'g1'").gid == "g1"

    def test_copy_from(self):
        stmt = parse_one("COPY t (a, b) FROM STDIN WITH (FORMAT csv)")
        assert stmt.direction == "from" and stmt.columns == ["a", "b"]

    def test_copy_to(self):
        assert parse_one("COPY t TO STDOUT").direction == "to"

    def test_vacuum(self):
        stmt = parse_one("VACUUM FULL ANALYZE t")
        assert stmt.full and stmt.analyze and stmt.table == "t"

    def test_explain(self):
        stmt = parse_one("EXPLAIN SELECT 1")
        assert isinstance(stmt.statement, A.Select)

    def test_set_show(self):
        stmt = parse_one("SET search_path = foo")
        assert stmt.name == "search_path"
        assert parse_one("SHOW max_connections").name == "max_connections"

    def test_set_local(self):
        assert parse_one("SET LOCAL lock_timeout = 100").is_local

    def test_call(self):
        stmt = parse_one("CALL new_order(1, 2)")
        assert stmt.name == "new_order" and len(stmt.args) == 2

    def test_multi_statement_script(self):
        stmts = parse("SELECT 1; SELECT 2; ;")
        assert len(stmts) == 2


class TestErrors:
    def test_garbage(self):
        with pytest.raises(SyntaxErrorSQL):
            parse_one("FLARB 1")

    def test_missing_paren(self):
        with pytest.raises(SyntaxErrorSQL):
            parse_one("SELECT f(1")

    def test_two_statements_for_parse_one(self):
        with pytest.raises(SyntaxErrorSQL):
            parse_one("SELECT 1; SELECT 2")
