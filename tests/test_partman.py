"""pg_partman-style time partitioning and its composition with Citus
("individual shards are locally partitioned", §6)."""

import pytest

from repro import PostgresInstance, make_cluster
from repro.errors import MetadataError
from repro.partman import install_partman


@pytest.fixture
def partitioned():
    pg = PostgresInstance("pg")
    install_partman(pg)
    s = pg.connect()
    s.execute("CREATE TABLE metrics (ts int, device int, v float,"
              " PRIMARY KEY (ts, device))")
    s.execute("SELECT create_parent('metrics', 'ts', 100)")
    s.execute("INSERT INTO metrics VALUES (5, 1, 1.0), (105, 1, 2.0), (250, 2, 3.0)")
    return pg, s


class TestPartitioning:
    def test_children_created_on_demand(self, partitioned):
        _pg, s = partitioned
        parts = s.execute("SELECT show_partitions('metrics')").scalar()
        assert parts == ["metrics_p0", "metrics_p100", "metrics_p200"]

    def test_existing_rows_migrate_on_create_parent(self):
        pg = PostgresInstance("pg")
        install_partman(pg)
        s = pg.connect()
        s.execute("CREATE TABLE m (ts int PRIMARY KEY, v int)")
        s.execute("INSERT INTO m VALUES (1, 1), (150, 2)")
        s.execute("SELECT create_parent('m', 'ts', 100)")
        assert s.execute("SELECT count(*) FROM m").scalar() == 2
        shell = pg.catalog.get_table("m")
        assert len(shell.heap.tuples) == 0  # shell emptied; data in children

    def test_select_unions_partitions(self, partitioned):
        _pg, s = partitioned
        assert s.execute("SELECT count(*) FROM metrics").scalar() == 3
        rows = s.execute("SELECT ts FROM metrics ORDER BY ts").rows
        assert [r[0] for r in rows] == [5, 105, 250]

    def test_partition_pruning_on_range(self, partitioned):
        _pg, s = partitioned
        text = "\n".join(r[0] for r in s.execute(
            "EXPLAIN SELECT * FROM metrics WHERE ts >= 100 AND ts < 200"
        ).rows)
        assert "metrics_p100" in text
        assert "metrics_p0" not in text and "metrics_p200" not in text

    def test_pruning_on_equality(self, partitioned):
        _pg, s = partitioned
        text = "\n".join(r[0] for r in s.execute(
            "EXPLAIN SELECT * FROM metrics WHERE ts = 250"
        ).rows)
        assert text.count("-> Scan") == 1

    def test_aggregate_over_partitions(self, partitioned):
        _pg, s = partitioned
        rows = s.execute(
            "SELECT device, sum(v) FROM metrics GROUP BY device ORDER BY device"
        ).rows
        assert rows == [[1, 3.0], [2, 3.0]]

    def test_update_and_delete_fan_out(self, partitioned):
        _pg, s = partitioned
        assert s.execute("UPDATE metrics SET v = v + 1").rowcount == 3
        assert s.execute("DELETE FROM metrics WHERE ts < 100").rowcount == 1
        assert s.execute("SELECT count(*) FROM metrics").scalar() == 2

    def test_copy_routes_to_partitions(self, partitioned):
        _pg, s = partitioned
        s.execute("COPY metrics FROM STDIN", copy_data=[[777, 9, 9.0]])
        parts = s.execute("SELECT show_partitions('metrics')").scalar()
        assert "metrics_p700" in parts

    def test_null_partition_key_rejected(self, partitioned):
        from repro.errors import DataError

        _pg, s = partitioned
        with pytest.raises(DataError):
            s.execute("INSERT INTO metrics VALUES (NULL, 1, 0)")

    def test_parent_in_join_position_rejected(self, partitioned):
        _pg, s = partitioned
        s.execute("CREATE TABLE other (id int PRIMARY KEY)")
        with pytest.raises(MetadataError):
            s.execute("SELECT * FROM other o JOIN metrics m ON o.id = m.device")

    def test_double_create_parent_rejected(self, partitioned):
        _pg, s = partitioned
        with pytest.raises(MetadataError):
            s.execute("SELECT create_parent('metrics', 'ts', 100)")

    def test_non_integer_column_rejected(self):
        pg = PostgresInstance("pg")
        install_partman(pg)
        s = pg.connect()
        s.execute("CREATE TABLE m (name text PRIMARY KEY)")
        with pytest.raises(MetadataError):
            s.execute("SELECT create_parent('m', 'name', 100)")


class TestCitusComposition:
    """The paper's §6 layering: a distributed table whose *shards* are
    locally time-partitioned on each worker by pg_partman."""

    @pytest.fixture
    def composed(self, citus, citus_session):
        for name in citus.cluster.node_names():
            install_partman(citus.cluster.node(name))
        s = citus_session
        s.execute("CREATE TABLE events (device int, ts int, v float,"
                  " PRIMARY KEY (device, ts))")
        s.execute("SELECT create_distributed_table('events', 'device')")
        s.copy_rows(
            "events",
            [[d, t, float(d + t)] for d in range(1, 9) for t in (5, 150, 260)],
        )
        ext = citus.coordinator_ext
        for shard in ext.metadata.cache.get_table("events").shards:
            node = ext.metadata.cache.placement_node(shard.shardid)
            ext.worker_connection(node).execute(
                f"SELECT create_parent('{shard.shard_name}', 'ts', 100)"
            )
        return citus, s

    def test_distributed_queries_see_all_rows(self, composed):
        _citus, s = composed
        assert s.execute("SELECT count(*) FROM events").scalar() == 24

    def test_time_filter_prunes_inside_shards(self, composed):
        _citus, s = composed
        assert s.execute(
            "SELECT count(*) FROM events WHERE ts >= 100 AND ts < 200"
        ).scalar() == 8

    def test_device_routing_still_works(self, composed):
        _citus, s = composed
        rows = s.execute(
            "SELECT ts FROM events WHERE device = 3 ORDER BY ts"
        ).rows
        assert [r[0] for r in rows] == [5, 150, 260]

    def test_shard_partitions_exist_on_workers(self, composed):
        citus, _s = composed
        ext = citus.coordinator_ext
        partitioned_shards = 0
        for shard in ext.metadata.cache.get_table("events").shards:
            node = ext.metadata.cache.placement_node(shard.shardid)
            worker = citus.cluster.node(node)
            children = [t for t in worker.catalog.tables
                        if t.startswith(shard.shard_name + "_p")]
            partman = worker.extensions["pg_partman"]
            assert shard.shard_name in partman.parents
            if children:
                partitioned_shards += 1
        # Partitions materialize on demand: every shard that holds rows has
        # local time partitions.
        assert partitioned_shards >= 1

    def test_writes_through_coordinator_land_in_partitions(self, composed):
        citus, s = composed
        s.execute("INSERT INTO events VALUES (3, 999, 0.0)")
        ext = citus.coordinator_ext
        from repro.engine.datum import hash_value

        dist = ext.metadata.cache.get_table("events")
        index = dist.shard_index_for_hash(hash_value(3))
        shard = dist.shards[index]
        node = ext.metadata.cache.placement_node(shard.shardid)
        worker = citus.cluster.node(node)
        assert worker.catalog.has_table(f"{shard.shard_name}_p900")
