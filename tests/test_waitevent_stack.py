"""WaitEventStack driven directly (no executor): nested begin/finish,
exception unwinding through waiting(), clear() gauge balance, and the
shared wait_class_totals rollup."""

from __future__ import annotations

import pytest

from repro import PostgresInstance
from repro.engine.waitevents import (
    COUNT_PREFIX,
    IN_PROGRESS_GAUGE,
    TIME_PREFIX,
    wait_class_totals,
    wait_totals,
)
from repro.net.clock import SimClock


@pytest.fixture
def stack(pg):
    return pg.connect().wait_events


def _gauge(pg) -> int:
    return pg.wait_registry.snapshot().gauge(IN_PROGRESS_GAUGE)


class TestNestedLiveWaits:
    def test_three_deep_nesting_tracks_depth_and_top(self, pg, stack):
        a = stack.begin("Client", "PoolLease")
        assert (stack.depth, stack.current) == (1, a)
        b = stack.begin("Net", "RemoteExecute")
        c = stack.begin("Lock", "tuple")
        assert stack.depth == 3
        assert stack.current is c
        # frames() is the bottom-to-top snapshot ASH samples.
        assert [f.event for f in stack.frames()] == \
            ["PoolLease", "RemoteExecute", "tuple"]
        assert _gauge(pg) == 3
        stack.finish(c)
        assert (stack.depth, stack.current) == (2, b)
        stack.finish(b)
        stack.finish(a)
        assert (stack.depth, stack.current) == (0, None)
        assert _gauge(pg) == 0

    def test_waits_account_elapsed_virtual_time(self, stack):
        pg = PostgresInstance("we_timed", clock=SimClock())
        stack = pg.connect().wait_events
        we = stack.begin("Lock", "relation")
        pg.clock.advance(0.25)
        stack.finish(we)
        totals = wait_totals(pg.wait_registry)
        entry = totals[("Lock", "relation", "we_timed")]
        assert entry["count"] == 1
        assert entry["seconds"] == pytest.approx(0.25)
        assert stack.statement_seconds == pytest.approx(0.25)

    def test_finish_is_idempotent(self, pg, stack):
        we = stack.begin("Lock", "tuple")
        stack.finish(we)
        stack.finish(we)  # already gone: must not double-account
        assert _gauge(pg) == 0
        totals = wait_totals(pg.wait_registry)
        assert totals[("Lock", "tuple", pg.name)]["count"] == 1

    def test_waiting_context_unwinds_on_exception(self, pg, stack):
        with pytest.raises(RuntimeError):
            with stack.waiting("Client", "PoolLease"):
                with stack.waiting("Lock", "tuple"):
                    assert stack.depth == 2
                    raise RuntimeError("boom")
        assert stack.depth == 0
        assert _gauge(pg) == 0
        # Both unwound waits were still accounted.
        totals = wait_totals(pg.wait_registry)
        assert totals[("Client", "PoolLease", pg.name)]["count"] == 1
        assert totals[("Lock", "tuple", pg.name)]["count"] == 1

    def test_clear_leaves_gauge_balanced_without_accounting(self, pg, stack):
        stack.begin("Client", "PoolLease")
        stack.begin("Lock", "tuple")
        stack.begin("Lock", "relation")
        assert _gauge(pg) == 3
        stack.clear()
        assert stack.depth == 0
        assert _gauge(pg) == 0  # balanced, not negative
        # Session death drops the waits without folding count/time totals.
        assert wait_totals(pg.wait_registry) == {}


class TestWaitClassTotals:
    def test_rolls_counters_up_by_class(self):
        counters = {
            COUNT_PREFIX + "Lock.tuple": 3,
            COUNT_PREFIX + "Lock.relation": 2,
            COUNT_PREFIX + "Net.RemoteExecute": 7,
            TIME_PREFIX + "Lock.tuple": 99,  # time totals don't count
            "pool_sessions_opened": 5,  # unrelated counters ignored
        }
        assert wait_class_totals(counters) == {"Lock": 5, "Net": 7}

    def test_per_node_labelled_duplicates_are_skipped(self):
        counters = {
            COUNT_PREFIX + "TwoPC.Prepare": 4,  # cluster-wide total
            COUNT_PREFIX + "TwoPC.Prepare@worker1": 3,  # per-node label
            COUNT_PREFIX + "TwoPC.Prepare@worker2": 1,
        }
        assert wait_class_totals(counters) == {"TwoPC": 4}

    def test_empty_input(self):
        assert wait_class_totals({}) == {}
