"""Closed-loop traffic harness: smoke-scale runs in tier-1, determinism,
SLO evaluation, and a slow-marked multi-thousand-session soak."""

from __future__ import annotations

import json

import pytest

from repro import make_cluster
from repro.workloads.traffic import (
    CounterRule,
    LatencyRule,
    RatioRule,
    TrafficConfig,
    TrafficHarness,
    evaluate_slo,
    run_traffic,
)


def smoke_config(**overrides) -> TrafficConfig:
    base = dict(
        sessions=100,
        tenants=40,
        sim_duration=10.0,
        think_mean=1.0,
        ramp_seconds=2.0,
        seed=777,
    )
    base.update(overrides)
    return TrafficConfig(**base)


@pytest.fixture(scope="module")
def smoke_run():
    """One shared smoke run (~100 sessions): building it once keeps all
    the assertion-only tests below cheap."""
    citus = make_cluster(workers=2, shard_count=8, max_connections=2000)
    harness = TrafficHarness(citus, smoke_config())
    harness.run()
    return harness, harness.report()


class TestSmokeScale:
    def test_all_sessions_ran_concurrently(self, smoke_run):
        harness, report = smoke_run
        assert report["peak_clients"] == 100
        assert report["transactions"]["transactions"] > 300

    def test_connection_churn_recycles_clients(self, smoke_run):
        harness, report = smoke_run
        totals = report["transactions"]
        # Lifetimes are 4-12 transactions, so sessions churned several
        # times within the run — and every churned client was replaced.
        assert totals["sessions_churned"] > 0
        assert totals["sessions_opened"] > 100
        # Drain closed everything: no leaked client handles.
        assert all(p.client_count == 0 for p in harness.pools.values())

    def test_pool_multiplexes_clients_over_few_sessions(self, smoke_run):
        harness, report = smoke_run
        pool = report["pool"]
        assert pool["pool_client_rejections"] == 0
        # Thousands of statements rode a handful of server sessions.
        assert pool["pool_sessions_opened"] <= sum(
            p.pool_size for p in harness.pools.values()
        )
        assert pool["pool_session_reuses"] > pool["pool_sessions_opened"]

    def test_zipf_skew_shows_in_tenant_totals(self, smoke_run):
        _, report = smoke_run
        hottest = dict(report["hottest_tenants"])
        # Tenant 0 is rank 0 of the Zipf draw: it must dominate.
        assert 0 in hottest
        assert hottest[0] == max(hottest.values())
        assert report["tenants_touched"] > 10

    def test_workload_mix_covers_all_adapters(self, smoke_run):
        _, report = smoke_run
        assert set(report["per_mix"]) == {
            "ycsb_a", "ycsb_b", "ycsb_c", "tpcc", "gharchive"
        }
        assert all(count > 0 for count in report["per_mix"].values())

    def test_stat_statements_feed_the_report(self, smoke_run):
        _, report = smoke_run
        assert report["statements"], "citus_stat_statements saw no traffic"
        for stmt in report["statements"]:
            assert stmt["calls"] >= 1
            assert stmt["p50_ms"] <= stmt["p95_ms"] <= stmt["p99_ms"]

    def test_multi_warehouse_traffic_produces_2pc(self, smoke_run):
        _, report = smoke_run
        # ~7% of TPC-C payments cross warehouses: some 2PC, but a minority.
        assert report["twopc"]["twopc_transactions"] > 0
        assert report["twopc"]["rate"] < 0.5

    def test_default_slo_spec_passes_smoke_run(self, smoke_run):
        _, report = smoke_run
        assert report["slo"]["passed"], json.dumps(report["slo"], indent=2)


class TestDeterminism:
    def test_same_seed_identical_report(self):
        cfg = smoke_config(sessions=60, sim_duration=6.0)
        reports = []
        for _ in range(2):
            citus = make_cluster(workers=2, shard_count=8, max_connections=2000)
            reports.append(run_traffic(citus, cfg))
        a, b = (json.dumps(r, sort_keys=True) for r in reports)
        assert a == b

    def test_different_seed_differs(self):
        reports = []
        for seed in (1, 2):
            citus = make_cluster(workers=2, shard_count=8, max_connections=2000)
            reports.append(run_traffic(citus, smoke_config(
                sessions=40, sim_duration=5.0, seed=seed)))
        assert (reports[0]["transactions"]["transactions"]
                != reports[1]["transactions"]["transactions"]
                or reports[0]["per_mix"] != reports[1]["per_mix"])


class TestSloEvaluation:
    def test_latency_rule_failure_detected(self, smoke_run):
        _, report = smoke_run
        harness, _ = smoke_run
        rows = harness.stat_statement_rows()
        verdict = evaluate_slo(
            [LatencyRule("impossible", percentile=99, max_ms=0.0)],
            rows, harness.counter_delta(),
        )
        assert not verdict["passed"]
        assert verdict["rules"][0]["observed_ms"] > 0.0

    def test_unmatched_filter_fails_loudly(self, smoke_run):
        harness, _ = smoke_run
        verdict = evaluate_slo(
            [LatencyRule("ghost tier", percentile=95, max_ms=100.0,
                         tier="no_such_tier")],
            harness.stat_statement_rows(), harness.counter_delta(),
        )
        assert not verdict["passed"]
        assert verdict["rules"][0]["detail"] == "no matching statements"

    def test_counter_and_ratio_rules(self, smoke_run):
        harness, _ = smoke_run
        counters = harness.counter_delta()
        verdict = evaluate_slo(
            [
                CounterRule("no rejections", "pool_client_rejections", 0),
                RatioRule("2pc", "twopc_transactions",
                          ("onepc_commits", "twopc_transactions"), 1.0),
                CounterRule("impossible", "executor_statements", 0),
            ],
            [], counters,
        )
        assert [r["passed"] for r in verdict["rules"]] == [True, True, False]


class TestConfigValidation:
    def test_unknown_mix_rejected(self):
        citus = make_cluster(workers=0, shard_count=4)
        cfg = smoke_config(mix_weights={"nope": 1.0})
        with pytest.raises(ValueError, match="unknown workload mixes"):
            TrafficHarness(citus, cfg).prepare()

    def test_report_before_run_rejected(self):
        citus = make_cluster(workers=0, shard_count=4)
        with pytest.raises(RuntimeError):
            TrafficHarness(citus, smoke_config()).report()


@pytest.mark.slow
class TestSoak:
    """Multi-thousand-session soak — excluded from tier-1 by the ``slow``
    marker (see pyproject addopts); CI runs it in the soak lane."""

    def test_2000_sessions_with_churn_meet_slos(self):
        citus = make_cluster(workers=4, shard_count=16, max_connections=4000)
        cfg = TrafficConfig(
            sessions=2000, tenants=400, sim_duration=60.0, think_mean=2.0,
            ramp_seconds=10.0, max_transactions=8000, seed=4242,
        )
        report = run_traffic(citus, cfg)
        assert report["peak_clients"] == 2000
        assert report["transactions"]["transactions"] >= 8000
        assert report["transactions"]["sessions_churned"] > 0
        assert report["slo"]["passed"], json.dumps(report["slo"], indent=2)
