"""PgBouncer pool invariants: close idempotence, exhaustion-wait
semantics, and a seeded property-style stress test of gauge balance."""

from __future__ import annotations

import random

import pytest

from repro import PostgresInstance
from repro.engine.stats import stats_for
from repro.errors import CatalogError, TooManyConnections
from repro.net.pool import ConnectionPool


@pytest.fixture
def pool_instance():
    instance = PostgresInstance("pg_pool_inv")
    instance.connect("setup").execute("CREATE TABLE t (a int PRIMARY KEY, b int)")
    return instance


# ----------------------------------------------------------- close semantics


class TestCloseIdempotence:
    def test_double_close_does_not_underflow(self, pool_instance):
        pool = ConnectionPool(pool_instance, pool_size=2, max_client_conn=3)
        client = pool.client()
        client.close()
        client.close()  # second close must be a no-op
        assert pool.client_count == 0
        assert stats_for(pool_instance).snapshot().gauge("pool_clients") == 0

    def test_double_close_does_not_inflate_capacity(self, pool_instance):
        """Regression: a double close used to underflow ``_client_count``,
        permanently raising the client cap by one per extra close."""
        pool = ConnectionPool(pool_instance, pool_size=2, max_client_conn=2)
        client = pool.client()
        client.close()
        client.close()
        pool.client()
        pool.client()
        with pytest.raises(TooManyConnections):
            pool.client()

    def test_closed_client_rejects_execute(self, pool_instance):
        pool = ConnectionPool(pool_instance, pool_size=2)
        client = pool.client()
        client.close()
        with pytest.raises(TooManyConnections):
            client.execute("SELECT 1")

    def test_close_releases_held_lease(self, pool_instance):
        pool = ConnectionPool(pool_instance, pool_size=2)
        client = pool.client()
        client.execute("BEGIN")
        client.execute("INSERT INTO t VALUES (1, 1)")
        assert client._leased is not None
        client.close()
        # The open transaction rolled back and the session went back idle.
        assert client._leased is None
        assert pool._lease_count == 0
        assert len(pool._idle) == 1


# ------------------------------------------------------------ waits counter


class TestWaitsSemantics:
    def test_waits_counts_exhaustion_raises(self, pool_instance):
        """``waits`` counts lease attempts that found the pool exhausted
        and raised TooManyConnections — it mirrors the ``pool_exhausted``
        counter exactly (this pool rejects, it does not queue)."""
        pool = ConnectionPool(pool_instance, pool_size=0)
        for attempt in range(3):
            with pytest.raises(TooManyConnections):
                pool._acquire()
        assert pool.waits == 3
        assert stats_for(pool_instance).snapshot().value("pool_exhausted") == 3

    def test_successful_lease_does_not_bump_waits(self, pool_instance):
        pool = ConnectionPool(pool_instance, pool_size=1)
        client = pool.client()
        client.execute("SELECT * FROM t")
        client.close()
        assert pool.waits == 0


# --------------------------------------------------- property-style stress


class TestPoolInvariantStress:
    """Random acquire/execute/fail/release/close sequences must keep the
    pool's accounting balanced: gauges return to zero, the idle list never
    exceeds pool_size, and no server session is ever leased twice."""

    OPS = ("open", "execute", "begin", "commit", "rollback", "fail",
           "close", "double_close")

    @pytest.mark.parametrize("seed", [11, 23, 47, 91])
    def test_random_sequences_keep_gauges_balanced(self, pool_instance, seed):
        rng = random.Random(seed)
        pool = ConnectionPool(pool_instance, pool_size=3, max_client_conn=12)
        registry = stats_for(pool_instance)
        before = registry.snapshot()
        clients: list = []
        next_key = [100]

        def leased_sessions():
            return [c._leased for c in clients if c._leased is not None]

        for step in range(400):
            op = rng.choice(self.OPS)
            try:
                if op == "open" or not clients:
                    clients.append(pool.client())
                    continue
                client = rng.choice(clients)
                if op == "execute":
                    next_key[0] += 1
                    client.execute(
                        "INSERT INTO t VALUES ($1, $2)", [next_key[0], step]
                    )
                elif op == "begin":
                    client.execute("BEGIN")
                elif op == "commit":
                    client.execute("COMMIT")
                elif op == "rollback":
                    client.execute("ROLLBACK")
                elif op == "fail":
                    with pytest.raises(CatalogError):
                        client.execute("SELECT * FROM no_such_table")
                elif op == "close":
                    client.close()
                    clients.remove(client)
                elif op == "double_close":
                    client.close()
                    client.close()
                    clients.remove(client)
            except TooManyConnections:
                pass  # rejection/exhaustion is a legal outcome, not a leak
            # Invariants that must hold after *every* step:
            sessions = leased_sessions()
            assert len(sessions) == len(set(map(id, sessions))), \
                "a server session is leased to two clients at once"
            assert len(pool._idle) <= pool.pool_size
            assert pool._lease_count == len(sessions)

        for client in clients:
            client.close()
        delta = registry.snapshot().diff(before)
        assert delta.gauge("pool_leases") == 0
        assert delta.gauge("pool_clients") == 0
        assert pool.client_count == 0
        assert pool._lease_count == 0
        assert len(pool._idle) <= pool.pool_size
