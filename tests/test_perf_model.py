"""Performance model tests: every figure's *shape* must match the paper's
qualitative claims (who wins, by roughly what factor, where it flattens)."""

import pytest

from repro.perf import model, paper_setups
from repro.perf.resources import cache_miss_fraction


def by_name(rows):
    return {r.setup: r for r in rows}


class TestResources:
    def test_paper_setups_shapes(self):
        names = [s.name for s in paper_setups()]
        assert names == ["PostgreSQL", "Citus 0+1", "Citus 4+1", "Citus 8+1"]
        shapes = {s.name: s for s in paper_setups()}
        assert shapes["Citus 4+1"].total_cores == 64
        assert shapes["Citus 8+1"].total_iops == 8 * 7500

    def test_cache_miss_fraction(self):
        gb = 1024**3
        assert cache_miss_fraction(10 * gb, 64 * gb) == 0.0
        assert 0.0 < cache_miss_fraction(100 * gb, 64 * gb) < 1.0
        assert cache_miss_fraction(100 * gb, 256 * gb) == 0.0


class TestFigure6Tpcc:
    def test_shape(self):
        rows = by_name(model.figure6())
        pg = rows["PostgreSQL"].value
        # Paper: 0+1 slightly slower than PG (planning overhead).
        assert 0.9 * pg <= rows["Citus 0+1"].value < pg
        # Paper: 4+1 ≈ 13x PG because the working set fits in memory.
        assert 10 <= rows["Citus 4+1"].value / pg <= 16
        # Paper: 4→8 is sublinear (cross-node txn latency doesn't shrink).
        ratio_8_over_4 = rows["Citus 8+1"].value / rows["Citus 4+1"].value
        assert 1.2 <= ratio_8_over_4 < 2.0

    def test_single_server_is_io_bound(self):
        rows = by_name(model.figure6())
        assert rows["PostgreSQL"].bottleneck == "disk I/O"

    def test_response_time_drops_with_memory_fit(self):
        rows = by_name(model.figure6())
        assert rows["Citus 4+1"].response_time_ms < rows["PostgreSQL"].response_time_ms / 5


class TestFigure7RealTime:
    def test_copy_shape(self):
        rows = by_name(model.figure7()["copy"])
        # Lower is better (seconds). PG slowest; 0+1 faster; 4+1 faster
        # still; 8+1 equal to 4+1 (single COPY is coordinator-bound).
        assert rows["Citus 0+1"].value < rows["PostgreSQL"].value
        assert rows["Citus 4+1"].value < rows["Citus 0+1"].value
        assert rows["Citus 8+1"].value == pytest.approx(rows["Citus 4+1"].value)

    def test_dashboard_scales_with_cores(self):
        rows = by_name(model.figure7()["dashboard"])
        assert rows["Citus 0+1"].value < rows["PostgreSQL"].value
        ratio = rows["Citus 4+1"].value / rows["Citus 8+1"].value
        assert 1.8 <= ratio <= 2.2  # CPU-bound: 2x cores → ~2x faster

    def test_insert_select_96_percent_reduction(self):
        rows = by_name(model.figure7()["insert_select"])
        reduction = 1 - rows["Citus 8+1"].value / rows["PostgreSQL"].value
        assert reduction >= 0.93  # paper: 96%


class TestFigure8Tpch:
    def test_two_orders_of_magnitude(self):
        rows = by_name(model.figure8())
        speedup = rows["Citus 8+1"].value / rows["PostgreSQL"].value
        assert speedup >= 80  # "two orders of magnitude"

    def test_monotone_scaling(self):
        rows = model.figure8()
        values = [r.value for r in rows]
        assert values == sorted(values)

    def test_cluster_is_cpu_bound(self):
        rows = by_name(model.figure8())
        assert rows["Citus 8+1"].bottleneck == "CPU"


class TestFigure9TwoPhaseCommit:
    def test_penalty_between_15_and_40_percent(self):
        rows = model.figure9()
        pairs = {}
        for row in rows:
            name, kind = row.setup.rsplit(" (", 1)
            pairs.setdefault(name, {})[kind.rstrip(")")] = row.value
        for name, modes in pairs.items():
            if name == "Citus 0+1":
                continue  # single node: no 2PC possible
            penalty = 1 - modes["different keys"] / modes["same key"]
            assert 0.15 <= penalty <= 0.40, (name, penalty)

    def test_both_modes_scale_with_workers(self):
        rows = {r.setup: r.value for r in model.figure9()}
        assert rows["Citus 8+1 (same key)"] > rows["Citus 4+1 (same key)"]
        assert rows["Citus 8+1 (different keys)"] > rows["Citus 4+1 (different keys)"]

    def test_single_node_has_no_penalty(self):
        rows = {r.setup: r.value for r in model.figure9()}
        assert rows["Citus 0+1 (same key)"] == rows["Citus 0+1 (different keys)"]


class TestFigure10Ycsb:
    def test_single_node_citus_slightly_worse(self):
        rows = by_name(model.figure10())
        assert 0.9 <= rows["Citus 0+1"].value / rows["PostgreSQL"].value < 1.0

    def test_linear_io_scaling(self):
        rows = by_name(model.figure10())
        ratio = rows["Citus 8+1"].value / rows["Citus 4+1"].value
        assert 1.8 <= ratio <= 2.2

    def test_io_bound_everywhere(self):
        for row in model.figure10():
            assert row.bottleneck == "disk I/O"

    def test_4_1_speedup_exceeds_node_ratio(self):
        # "small additional speed up due to data fitting in memory"
        rows = by_name(model.figure10())
        assert rows["Citus 4+1"].value / rows["PostgreSQL"].value > 4.0


class TestReporting:
    def test_format_table_contains_all_setups(self):
        text = model.format_table(model.figure6(), "NOPM", "new orders/min")
        for name in ("PostgreSQL", "Citus 0+1", "Citus 4+1", "Citus 8+1"):
            assert name in text

    def test_speedup_helper(self):
        speedups = model.speedup_over_postgres(model.figure8())
        assert speedups["PostgreSQL"] == 1.0
        assert speedups["Citus 8+1"] > speedups["Citus 4+1"]
