"""Hypothesis property tests for distributed-layer invariants:

- routing totality: every inserted row is retrievable by key and counted;
- pruning soundness: shard pruning never loses matching rows;
- rebalancing/isolation preserve all data;
- hash ranges partition the int32 space exactly.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import make_cluster
from repro.citus.metadata import INT32_MAX, INT32_MIN, split_hash_ranges
from repro.engine.datum import hash_value

slow_settings = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestHashRangeProperties:
    @given(st.integers(min_value=1, max_value=128))
    def test_property_ranges_partition_int32_space(self, count):
        ranges = split_hash_ranges(count)
        assert ranges[0][0] == INT32_MIN
        assert ranges[-1][1] == INT32_MAX
        covered = 0
        for lo, hi in ranges:
            assert lo <= hi
            covered += hi - lo + 1
        assert covered == 2**32

    @given(st.integers(min_value=1, max_value=64),
           st.lists(st.integers(), min_size=1, max_size=20))
    def test_property_every_hash_lands_in_exactly_one_range(self, count, keys):
        ranges = split_hash_ranges(count)
        for key in keys:
            h = hash_value(key)
            owners = [i for i, (lo, hi) in enumerate(ranges) if lo <= h <= hi]
            assert len(owners) == 1


class TestRoutingTotality:
    @slow_settings
    @given(keys=st.lists(st.integers(min_value=-(10**6), max_value=10**6),
                         min_size=1, max_size=25, unique=True))
    def test_property_every_row_retrievable_and_counted(self, keys):
        citus = make_cluster(2, shard_count=8)
        s = citus.coordinator_session()
        s.execute("CREATE TABLE r (k int PRIMARY KEY, v int)")
        s.execute("SELECT create_distributed_table('r', 'k')")
        s.copy_rows("r", [[k, k % 97] for k in keys])
        assert s.execute("SELECT count(*) FROM r").scalar() == len(keys)
        for k in keys[:5]:
            assert s.execute("SELECT v FROM r WHERE k = $1", [k]).scalar() == k % 97

    @slow_settings
    @given(keys=st.lists(st.text(min_size=1, max_size=12), min_size=1,
                         max_size=20, unique=True))
    def test_property_text_keys_route_consistently(self, keys):
        citus = make_cluster(2, shard_count=8)
        s = citus.coordinator_session()
        s.execute("CREATE TABLE r (k text PRIMARY KEY, n int)")
        s.execute("SELECT create_distributed_table('r', 'k')")
        for i, k in enumerate(keys):
            s.execute("INSERT INTO r VALUES ($1, $2)", [k, i])
        for i, k in enumerate(keys):
            assert s.execute("SELECT n FROM r WHERE k = $1", [k]).scalar() == i


class TestPruningSoundness:
    @slow_settings
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                      max_size=30, unique=True),
        probe=st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                       max_size=5, unique=True),
    )
    def test_property_in_list_pruning_equals_full_scan(self, keys, probe):
        citus = make_cluster(2, shard_count=8)
        s = citus.coordinator_session()
        s.execute("CREATE TABLE r (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('r', 'k')")
        s.copy_rows("r", [[k] for k in keys])
        placeholders = ", ".join(str(p) for p in probe)
        pruned = s.execute(
            f"SELECT count(*) FROM r WHERE k IN ({placeholders})"
        ).scalar()
        assert pruned == len(set(keys) & set(probe))


class TestDataPreservation:
    @slow_settings
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_rebalance_preserves_rows(self, seed):
        import random

        from repro.citus.rebalancer import Rebalancer

        rng = random.Random(seed)
        citus = make_cluster(2, shard_count=6)
        s = citus.coordinator_session()
        s.execute("CREATE TABLE r (k int PRIMARY KEY, v int)")
        s.execute("SELECT create_distributed_table('r', 'k')")
        rows = [[k, rng.randrange(100)] for k in rng.sample(range(10_000), 30)]
        s.copy_rows("r", rows)
        checksum = s.execute("SELECT sum(k), sum(v), count(*) FROM r").first()
        citus.add_worker("worker3")
        Rebalancer(citus.coordinator_ext).rebalance(citus.coordinator_session("a"))
        assert s.execute("SELECT sum(k), sum(v), count(*) FROM r").first() == checksum

    @slow_settings
    @given(tenant=st.integers(min_value=0, max_value=50))
    def test_property_isolation_preserves_rows(self, tenant):
        citus = make_cluster(2, shard_count=4)
        s = citus.coordinator_session()
        s.execute("CREATE TABLE r (k int PRIMARY KEY, v int)")
        s.execute("SELECT create_distributed_table('r', 'k')")
        s.copy_rows("r", [[k, k] for k in range(51)])
        before = s.execute("SELECT sum(k), count(*) FROM r").first()
        s.execute("SELECT isolate_tenant_to_new_shard('r', $1)", [tenant])
        assert s.execute("SELECT sum(k), count(*) FROM r").first() == before
        assert s.execute("SELECT v FROM r WHERE k = $1", [tenant]).scalar() == tenant


class TestAggregationEquivalence:
    @slow_settings
    @given(values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False,
                  min_value=-1e6, max_value=1e6),
        min_size=1, max_size=30))
    def test_property_distributed_aggregates_match_local(self, values):
        from repro import PostgresInstance

        pg = PostgresInstance("pg").connect()
        citus = make_cluster(2, shard_count=4).coordinator_session()
        for session, distributed in ((pg, False), (citus, True)):
            session.execute("CREATE TABLE r (k serial PRIMARY KEY, x float)")
            if distributed:
                session.execute("SELECT create_distributed_table('r', 'k')")
            session.copy_rows("r", [[i + 1, v] for i, v in enumerate(values)],
                              ["k", "x"])
        sql = "SELECT count(*), sum(x), avg(x), min(x), max(x) FROM r"
        a, b = pg.execute(sql).first(), citus.execute(sql).first()
        assert a[0] == b[0]
        for left, right in zip(a[1:], b[1:]):
            assert left == pytest.approx(right, rel=1e-9, abs=1e-9)
