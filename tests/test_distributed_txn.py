"""Distributed transaction tests: 1PC delegation, 2PC, commit records,
recovery, atomic visibility, distributed deadlock detection."""

import pytest

from repro.errors import DeadlockDetected, LockTimeout, QueryCanceled
from tests.conftest import find_keys_on_distinct_nodes


@pytest.fixture
def s(citus, citus_session):
    s = citus_session
    s.execute("CREATE TABLE t (k int PRIMARY KEY, v int)")
    s.execute("SELECT create_distributed_table('t', 'k')")
    return s


@pytest.fixture
def keys(citus, s):
    k1, k2 = find_keys_on_distinct_nodes(citus, "t")
    s.execute("INSERT INTO t VALUES ($1, 0), ($2, 0)", [k1, k2])
    s.stats.clear()  # the fixture's cross-node insert is itself a 2PC
    return k1, k2


class TestCommitProtocols:
    def test_single_node_txn_uses_1pc(self, citus, s, keys):
        k1, _ = keys
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 1 WHERE k = $1", [k1])
        s.execute("COMMIT")
        assert s.stats["citus_1pc_commits"] == 1
        assert s.stats.get("citus_2pc_commits", 0) == 0

    def test_multi_node_txn_uses_2pc(self, citus, s, keys):
        k1, k2 = keys
        before = citus.coordinator_ext.stats.get("2pc_count", 0)
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 1 WHERE k = $1", [k1])
        s.execute("UPDATE t SET v = 2 WHERE k = $1", [k2])
        s.execute("COMMIT")
        assert s.stats["citus_2pc_commits"] == 1
        assert citus.coordinator_ext.stats["2pc_count"] == before + 1

    def test_2pc_writes_commit_records(self, citus, s, keys):
        k1, k2 = keys
        before = s.execute("SELECT count(*) FROM pg_dist_transaction").scalar()
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 1 WHERE k = $1", [k1])
        s.execute("UPDATE t SET v = 2 WHERE k = $1", [k2])
        s.execute("COMMIT")
        after = s.execute("SELECT count(*) FROM pg_dist_transaction").scalar()
        assert after == before + 2

    def test_rollback_across_nodes(self, citus, s, keys):
        k1, k2 = keys
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 9 WHERE k = $1", [k1])
        s.execute("UPDATE t SET v = 9 WHERE k = $1", [k2])
        s.execute("ROLLBACK")
        assert s.execute("SELECT sum(v) FROM t").scalar() == 0

    def test_multi_shard_statement_is_atomic(self, citus, s, keys):
        # A single multi-shard UPDATE outside a block still commits via 2PC.
        s.execute("UPDATE t SET v = 7")
        assert s.execute("SELECT sum(v) FROM t").scalar() == 14
        assert s.stats.get("citus_2pc_commits", 0) >= 1

    def test_read_only_txn_needs_no_2pc(self, citus, s, keys):
        s.execute("BEGIN")
        s.execute("SELECT count(*) FROM t")
        s.execute("COMMIT")
        assert s.stats.get("citus_2pc_commits", 0) == 0

    def test_txn_sees_own_writes_across_statements(self, citus, s, keys):
        k1, _ = keys
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 5 WHERE k = $1", [k1])
        assert s.execute("SELECT v FROM t WHERE k = $1", [k1]).scalar() == 5
        s.execute("ROLLBACK")
        assert s.execute("SELECT v FROM t WHERE k = $1", [k1]).scalar() == 0

    def test_uncommitted_invisible_to_other_coordinator_session(self, citus, s, keys):
        k1, _ = keys
        other = citus.coordinator_session("other")
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 5 WHERE k = $1", [k1])
        assert other.execute("SELECT v FROM t WHERE k = $1", [k1]).scalar() == 0
        s.execute("COMMIT")
        assert other.execute("SELECT v FROM t WHERE k = $1", [k1]).scalar() == 5


class TestRecovery:
    def test_failed_commit_prepared_recovered_as_commit(self, citus, s, keys):
        k1, k2 = keys
        ext = citus.coordinator_ext
        ext.failpoints["skip_commit_prepared"] = True
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 10 WHERE k = $1", [k1])
        s.execute("UPDATE t SET v = 10 WHERE k = $1", [k2])
        s.execute("COMMIT")
        ext.failpoints.clear()
        pending = sum(len(citus.cluster.node(n).prepared_txns)
                      for n in citus.cluster.node_names())
        assert pending == 2
        result = citus.run_maintenance()
        assert result["recovery"]["committed"] == 2
        assert s.execute("SELECT sum(v) FROM t").scalar() == 20

    def test_orphaned_prepared_without_record_rolls_back(self, citus, s, keys):
        k1, _ = keys
        # Simulate a worker-prepared transaction whose coordinator died
        # before writing a commit record.
        ext = citus.coordinator_ext
        dist = ext.metadata.cache.get_table("t")
        from repro.engine.datum import hash_value

        index = dist.shard_index_for_hash(hash_value(k1))
        node = ext.metadata.cache.placement_node(dist.shards[index].shardid)
        worker_session = citus.cluster.node(node).connect()
        shard = dist.shards[index].shard_name
        worker_session.execute("BEGIN")
        worker_session.execute(f"UPDATE {shard} SET v = 99 WHERE k = {k1}")
        worker_session.execute(
            f"PREPARE TRANSACTION 'citus_{ext.instance.name}_999_12345'"
        )
        result = citus.run_maintenance()
        assert result["recovery"]["aborted"] == 1
        assert s.execute("SELECT v FROM t WHERE k = $1", [k1]).scalar() == 0

    def test_commit_records_garbage_collected(self, citus, s, keys):
        k1, k2 = keys
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 1 WHERE k = $1", [k1])
        s.execute("UPDATE t SET v = 1 WHERE k = $1", [k2])
        s.execute("COMMIT")
        citus.run_maintenance()
        assert s.execute("SELECT count(*) FROM pg_dist_transaction").scalar() == 0

    def test_recovery_after_coordinator_restart(self, citus, s, keys):
        k1, k2 = keys
        ext = citus.coordinator_ext
        ext.failpoints["skip_commit_prepared"] = True
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 3 WHERE k = $1", [k1])
        s.execute("UPDATE t SET v = 3 WHERE k = $1", [k2])
        s.execute("COMMIT")
        ext.failpoints.clear()
        # Coordinator crashes; commit records are in its WAL.
        citus.coordinator.crash()
        citus.coordinator.restart()
        ext._utility_connections.clear()
        result = citus.run_maintenance()
        assert result["recovery"]["committed"] == 2
        check = citus.coordinator_session("check")
        assert check.execute("SELECT sum(v) FROM t").scalar() == 6


class TestDistributedRestorePoint:
    def test_cluster_restore_is_consistent(self, citus, s, keys):
        k1, k2 = keys
        s.execute("UPDATE t SET v = 1 WHERE k = $1", [k1])
        admin = citus.coordinator_session("admin")
        admin.execute("SELECT citus_create_restore_point('checkpoint1')")
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 100 WHERE k = $1", [k1])
        s.execute("UPDATE t SET v = 100 WHERE k = $1", [k2])
        s.execute("COMMIT")
        citus.restore_to_point("checkpoint1")
        check = citus.coordinator_session("check")
        rows = dict(check.execute("SELECT k, v FROM t").rows)
        assert rows[k1] == 1 and rows[k2] == 0


class TestDistributedDeadlock:
    def test_cross_node_deadlock_detected(self, citus, s, keys):
        k1, k2 = keys
        a = citus.coordinator_session("a")
        b = citus.coordinator_session("b")
        a.execute("BEGIN")
        a.execute("UPDATE t SET v = 1 WHERE k = $1", [k1])
        b.execute("BEGIN")
        b.execute("UPDATE t SET v = 2 WHERE k = $1", [k2])
        fa = a.execute_async(f"UPDATE t SET v = 1 WHERE k = {k2}")
        fb = b.execute_async(f"UPDATE t SET v = 2 WHERE k = {k1}")
        assert not fa.done and not fb.done
        cancelled = citus.run_maintenance()["deadlocks_cancelled"]
        assert len(cancelled) == 1
        citus.pump()
        # The younger transaction (b) is the victim.
        assert fb.done and isinstance(fb.error, QueryCanceled)
        b.execute("ROLLBACK")
        citus.pump()
        assert fa.done and fa.error is None
        a.execute("COMMIT")
        rows = dict(s.execute("SELECT k, v FROM t").rows)
        assert rows[k1] == 1 and rows[k2] == 1

    def test_no_false_positives_without_cycle(self, citus, s, keys):
        k1, k2 = keys
        a = citus.coordinator_session("a")
        b = citus.coordinator_session("b")
        a.execute("BEGIN")
        a.execute("UPDATE t SET v = 1 WHERE k = $1", [k1])
        fb = b.execute_async(f"UPDATE t SET v = 2 WHERE k = {k1}")
        cancelled = citus.run_maintenance()["deadlocks_cancelled"]
        assert cancelled == []
        a.execute("COMMIT")
        citus.pump()
        assert fb.done and fb.error is None

    def test_same_distributed_txn_edges_ignored(self, citus, s, keys):
        # A transaction waiting on itself across nodes is not a deadlock;
        # ensure the detector merges nodes by distributed txn id.
        from repro.citus.txn.deadlock import detect_distributed_deadlocks

        ext = citus.coordinator_ext
        node = citus.cluster.node("worker1")
        node.dist_txn_ids[500] = ("coordinator", 42)
        node.dist_txn_ids[501] = ("coordinator", 42)
        node.locks.add_wait(500, {501})
        try:
            assert detect_distributed_deadlocks(ext) == []
        finally:
            node.locks.clear_wait(500)
            node.dist_txn_ids.clear()


class TestSnapshotLimitations:
    def test_no_distributed_snapshot_isolation(self, citus, s, keys):
        """§3.7.4: a concurrent multi-node read may see a 2PC half-applied.
        This documents the relaxed guarantee rather than hiding it."""
        k1, k2 = keys
        ext = citus.coordinator_ext
        s.execute("INSERT INTO t VALUES (999999, 0) ON CONFLICT DO NOTHING")
        # The anomaly window exists between phase-two COMMIT PREPAREDs;
        # with the failpoint we freeze inside it and read.
        ext.failpoints["skip_commit_prepared"] = True
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 50 WHERE k = $1", [k1])
        s.execute("UPDATE t SET v = 50 WHERE k = $1", [k2])
        s.execute("COMMIT")
        ext.failpoints.clear()
        reader = citus.coordinator_session("reader")
        total_mid = reader.execute("SELECT sum(v) FROM t").scalar()
        citus.run_maintenance()
        total_after = reader.execute("SELECT sum(v) FROM t").scalar()
        assert total_mid == 0  # prepared-but-uncommitted: invisible
        assert total_after == 100
