"""Single-node transaction semantics: blocks, visibility, locking,
deadlocks, crash recovery, restore points."""

import pytest

from repro.errors import (
    DeadlockDetected,
    InvalidTransactionState,
    LockTimeout,
    TooManyConnections,
    TransactionAborted,
)


@pytest.fixture
def s(pg):
    s = pg.connect()
    s.execute("CREATE TABLE t (k int PRIMARY KEY, v int)")
    s.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    return s


class TestTransactionBlocks:
    def test_rollback_discards(self, s):
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 99 WHERE k = 1")
        assert s.execute("SELECT v FROM t WHERE k = 1").scalar() == 99
        s.execute("ROLLBACK")
        assert s.execute("SELECT v FROM t WHERE k = 1").scalar() == 10

    def test_commit_persists(self, s):
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 99 WHERE k = 1")
        s.execute("COMMIT")
        assert s.execute("SELECT v FROM t WHERE k = 1").scalar() == 99

    def test_error_aborts_block_until_rollback(self, s):
        s.execute("BEGIN")
        with pytest.raises(Exception):
            s.execute("INSERT INTO t VALUES (1, 0)")  # PK violation
        with pytest.raises(TransactionAborted):
            s.execute("SELECT 1")
        s.execute("ROLLBACK")
        assert s.execute("SELECT 1").scalar() == 1

    def test_implicit_txn_autocommits(self, s):
        s.execute("UPDATE t SET v = 5 WHERE k = 1")
        other = s.instance.connect()
        assert other.execute("SELECT v FROM t WHERE k = 1").scalar() == 5

    def test_uncommitted_invisible_to_other_session(self, pg, s):
        other = pg.connect()
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (3, 30)")
        assert other.execute("SELECT count(*) FROM t").scalar() == 2
        s.execute("COMMIT")
        assert other.execute("SELECT count(*) FROM t").scalar() == 3


class TestRowLocking:
    def test_conflicting_update_times_out_synchronously(self, pg, s):
        other = pg.connect()
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 1 WHERE k = 1")
        with pytest.raises(LockTimeout):
            other.execute("UPDATE t SET v = 2 WHERE k = 1")
        s.execute("COMMIT")

    def test_parked_statement_resumes_after_commit(self, pg, s):
        other = pg.connect()
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 1 WHERE k = 1")
        handle = other.execute_async("UPDATE t SET v = 2 WHERE k = 1")
        assert not handle.done
        s.execute("COMMIT")
        assert handle.done and handle.error is None
        assert s.execute("SELECT v FROM t WHERE k = 1").scalar() == 2

    def test_blocked_update_sees_new_value_after_wait(self, pg, s):
        # READ COMMITTED re-check: increments compose, none is lost.
        other = pg.connect()
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = v + 1 WHERE k = 1")
        handle = other.execute_async("UPDATE t SET v = v + 1 WHERE k = 1")
        s.execute("COMMIT")
        assert handle.done
        assert s.execute("SELECT v FROM t WHERE k = 1").scalar() == 12

    def test_select_for_update_blocks_writer(self, pg, s):
        other = pg.connect()
        s.execute("BEGIN")
        s.execute("SELECT * FROM t WHERE k = 1 FOR UPDATE")
        with pytest.raises(LockTimeout):
            other.execute("DELETE FROM t WHERE k = 1")
        s.execute("ROLLBACK")

    def test_non_conflicting_rows_dont_block(self, pg, s):
        other = pg.connect()
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 1 WHERE k = 1")
        other.execute("UPDATE t SET v = 2 WHERE k = 2")  # no conflict
        s.execute("COMMIT")


class TestLocalDeadlock:
    def test_deadlock_detected_and_victim_aborted(self, pg, s):
        a, b = pg.connect(), pg.connect()
        a.execute("BEGIN")
        a.execute("UPDATE t SET v = 1 WHERE k = 1")
        b.execute("BEGIN")
        b.execute("UPDATE t SET v = 2 WHERE k = 2")
        handle = a.execute_async("UPDATE t SET v = 1 WHERE k = 2")
        with pytest.raises(DeadlockDetected):
            b.execute("UPDATE t SET v = 2 WHERE k = 1")
        pg.pump()
        assert handle.done and handle.error is None
        a.execute("COMMIT")
        b.execute("ROLLBACK")
        rows = s.execute("SELECT k, v FROM t ORDER BY k").rows
        assert rows == [[1, 1], [2, 1]]


class TestPreparedTransactions:
    def test_prepare_then_commit(self, pg, s):
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 77 WHERE k = 1")
        s.execute("PREPARE TRANSACTION 'p1'")
        # Effects invisible while prepared; locks still held.
        other = pg.connect()
        assert other.execute("SELECT v FROM t WHERE k = 1").scalar() == 10
        with pytest.raises(LockTimeout):
            other.execute("UPDATE t SET v = 0 WHERE k = 1")
        other.execute("COMMIT PREPARED 'p1'")
        assert other.execute("SELECT v FROM t WHERE k = 1").scalar() == 77

    def test_prepare_then_rollback(self, pg, s):
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 77 WHERE k = 1")
        s.execute("PREPARE TRANSACTION 'p2'")
        s.execute("ROLLBACK PREPARED 'p2'")
        assert s.execute("SELECT v FROM t WHERE k = 1").scalar() == 10

    def test_duplicate_gid_rejected(self, pg, s):
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 1 WHERE k = 1")
        s.execute("PREPARE TRANSACTION 'dup'")
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 2 WHERE k = 2")
        with pytest.raises(InvalidTransactionState):
            s.execute("PREPARE TRANSACTION 'dup'")

    def test_unknown_gid(self, s):
        with pytest.raises(InvalidTransactionState):
            s.execute("COMMIT PREPARED 'nope'")

    def test_session_usable_after_prepare(self, s):
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 1 WHERE k = 1")
        s.execute("PREPARE TRANSACTION 'p3'")
        # New work proceeds in a fresh transaction.
        s.execute("UPDATE t SET v = 5 WHERE k = 2")
        s.execute("ROLLBACK PREPARED 'p3'")


class TestCrashRecovery:
    def test_committed_data_survives_crash(self, pg, s):
        s.execute("INSERT INTO t VALUES (3, 30)")
        pg.crash()
        pg.restart()
        s2 = pg.connect()
        assert s2.execute("SELECT count(*) FROM t").scalar() == 3

    def test_in_flight_txn_rolls_back_on_crash(self, pg, s):
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (3, 30)")
        pg.crash()
        pg.restart()
        s2 = pg.connect()
        assert s2.execute("SELECT count(*) FROM t").scalar() == 2

    def test_prepared_txn_survives_crash_with_locks(self, pg, s):
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 42 WHERE k = 1")
        s.execute("PREPARE TRANSACTION 'px'")
        pg.crash()
        pg.restart()
        s2 = pg.connect()
        assert "px" in pg.prepared_txns
        with pytest.raises(LockTimeout):
            s2.execute("UPDATE t SET v = 0 WHERE k = 1")
        s2.execute("COMMIT PREPARED 'px'")
        assert s2.execute("SELECT v FROM t WHERE k = 1").scalar() == 42

    def test_indexes_rebuilt_after_recovery(self, pg, s):
        s.execute("CREATE INDEX t_v_idx ON t (v)")
        s.execute("INSERT INTO t VALUES (3, 30)")
        pg.crash()
        pg.restart()
        s2 = pg.connect()
        assert s2.execute("SELECT k FROM t WHERE v = 30").scalar() == 3
        assert s2.stats["index_lookups"] >= 1

    def test_restore_point(self, pg, s):
        pg.wal.create_restore_point("before")
        s.execute("DELETE FROM t WHERE k = 1")
        pg.restore_to_point("before")
        s2 = pg.connect()
        assert s2.execute("SELECT count(*) FROM t").scalar() == 2

    def test_updates_replay_in_order(self, pg, s):
        for i in range(5):
            s.execute("UPDATE t SET v = $1 WHERE k = 1", [i])
        pg.crash()
        pg.restart()
        s2 = pg.connect()
        assert s2.execute("SELECT v FROM t WHERE k = 1").scalar() == 4


class TestConnectionLimits:
    def test_max_connections_enforced(self):
        from repro.engine import PostgresInstance

        pg = PostgresInstance("small", max_connections=2)
        pg.connect()
        pg.connect()
        with pytest.raises(TooManyConnections):
            pg.connect()

    def test_disconnect_frees_slot(self):
        from repro.engine import PostgresInstance

        pg = PostgresInstance("small", max_connections=1)
        s = pg.connect()
        s.close()
        pg.connect()


class TestGucSettings:
    def test_set_and_show(self, s):
        s.execute("SET application_name = myapp")
        assert s.execute("SHOW application_name").scalar() == "myapp"

    def test_set_local_cleared_at_txn_end(self, s):
        s.execute("BEGIN")
        s.execute("SET LOCAL work_mem = 64")
        assert s.execute("SHOW work_mem").scalar() == 64
        s.execute("COMMIT")
        assert s.execute("SHOW work_mem").scalar() is None
