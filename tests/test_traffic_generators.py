"""Traffic-harness generators and percentile math at the edges.

Covers the Zipf tenant sampler (determinism under seed, empirical skew
against the theoretical distribution), the think-time distributions, and
``citus_stat_statements`` percentile behaviour at low sample counts
(n = 0, 1, 2) — both at the LogHistogram level and through the UDF."""

from __future__ import annotations

import random

import pytest

from repro.engine.stats import LogHistogram
from repro.workloads.traffic import (
    ExponentialThink,
    FixedThink,
    ZipfGenerator,
    make_think,
)


# ----------------------------------------------------------------- Zipf


class TestZipfGenerator:
    def test_deterministic_under_seed(self):
        a = ZipfGenerator(100, s=1.1, seed=42)
        b = ZipfGenerator(100, s=1.1, seed=42)
        assert [a.sample() for _ in range(500)] == [b.sample() for _ in range(500)]

    def test_different_seeds_differ(self):
        a = ZipfGenerator(100, s=1.1, seed=1)
        b = ZipfGenerator(100, s=1.1, seed=2)
        assert [a.sample() for _ in range(200)] != [b.sample() for _ in range(200)]

    def test_samples_stay_in_range(self):
        gen = ZipfGenerator(10, s=1.3, seed=7)
        for _ in range(1000):
            assert 0 <= gen.sample() < 10

    def test_empirical_skew_matches_theory(self):
        """The empirical share of each of the hottest tenants must land
        within a tolerance of the theoretical Zipf probability."""
        n, draws = 20, 30_000
        gen = ZipfGenerator(n, s=1.2, seed=99)
        counts = [0] * n
        for _ in range(draws):
            counts[gen.sample()] += 1
        for k in range(3):
            empirical = counts[k] / draws
            theoretical = gen.probability(k)
            assert abs(empirical - theoretical) < 0.15 * theoretical, \
                f"tenant {k}: empirical {empirical:.4f} vs theory {theoretical:.4f}"
        # Rank order holds for well-separated ranks.
        assert counts[0] > counts[4] > counts[15]

    def test_rejects_empty_keyspace(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)


# ----------------------------------------------------------- think times


class TestThinkTimes:
    def test_exponential_deterministic_and_mean(self):
        think = ExponentialThink(2.0)
        samples = [think.sample(random.Random(5)) for _ in range(1)]
        assert samples == [think.sample(random.Random(5))]
        rng = random.Random(17)
        mean = sum(think.sample(rng) for _ in range(20_000)) / 20_000
        assert abs(mean - 2.0) < 0.1

    def test_fixed_is_constant(self):
        think = FixedThink(0.5)
        rng = random.Random(0)
        assert [think.sample(rng) for _ in range(5)] == [0.5] * 5

    def test_factory(self):
        assert isinstance(make_think("exponential", 1.0), ExponentialThink)
        assert isinstance(make_think("fixed", 1.0), FixedThink)
        with pytest.raises(ValueError):
            make_think("pareto", 1.0)
        with pytest.raises(ValueError):
            ExponentialThink(0.0)
        with pytest.raises(ValueError):
            FixedThink(-1.0)


# ------------------------------------------- percentiles at low sample count


class TestPercentileLowN:
    def test_empty_histogram_reports_zero(self):
        hist = LogHistogram()
        assert hist.percentile(50) == 0.0
        assert hist.percentile(99) == 0.0
        assert hist.as_dict()["p50"] == 0.0

    def test_single_observation_all_percentiles_equal(self):
        hist = LogHistogram()
        hist.observe(0.004)
        # With one sample every percentile clamps to the observed value.
        for p in (50, 95, 99):
            assert hist.percentile(p) == pytest.approx(0.004)

    def test_two_observations_split_and_stay_monotone(self):
        hist = LogHistogram()
        hist.observe(0.001)
        hist.observe(0.1)
        p50, p95, p99 = (hist.percentile(p) for p in (50, 95, 99))
        # p50 lands on the low sample's bucket (within the 1.5x bucket
        # factor), the tail clamps to the observed max.
        assert 0.001 <= p50 <= 0.0015
        assert p99 == pytest.approx(0.1)
        assert p50 <= p95 <= p99

    def test_percentiles_never_leave_observed_range(self):
        hist = LogHistogram()
        for v in (0.002, 0.007):
            hist.observe(v)
        for p in (1, 50, 95, 99, 100):
            assert 0.002 <= hist.percentile(p) <= 0.007


class TestStatStatementsLowN:
    """The UDF's per-fingerprint percentiles at call counts 1 and 2."""

    def _rows(self, session):
        return session.execute("SELECT citus_stat_statements()").scalar()

    def test_single_call_percentiles_collapse(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE lowq (k int PRIMARY KEY, v int)")
        s.execute("SELECT create_distributed_table('lowq', 'k')")
        s.execute("SELECT citus_stat_statements_reset()")
        s.execute("SELECT v FROM lowq WHERE k = 1")
        [row] = self._rows(s)
        _, _, _, calls, total, min_ms, max_ms, p50, p95, p99 = row[:10]
        assert calls == 1
        assert min_ms == pytest.approx(max_ms)
        assert p50 == pytest.approx(p95) == pytest.approx(p99)
        assert min_ms <= p50 <= max_ms or p50 == pytest.approx(min_ms)

    def test_two_calls_stay_within_min_max(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE lowq2 (k int PRIMARY KEY, v int)")
        s.execute("SELECT create_distributed_table('lowq2', 'k')")
        s.execute("SELECT citus_stat_statements_reset()")
        # Same key twice: stat entries are keyed (fingerprint, tenant), so
        # two different partition-key values would split into two n=1 rows.
        s.execute("SELECT v FROM lowq2 WHERE k = $1", [1])
        s.execute("SELECT v FROM lowq2 WHERE k = $1", [1])
        rows = [r for r in self._rows(s) if r[3] == 2]
        assert rows, "expected one fingerprint with two calls"
        for row in rows:
            _, _, _, calls, total, min_ms, max_ms, p50, p95, p99 = row[:10]
            assert p50 <= p95 <= p99
            assert min_ms - 1e-9 <= p50 and p99 <= max_ms + 1e-9
