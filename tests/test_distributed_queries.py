"""PG-vs-Citus equivalence battery: the same data and queries must produce
identical results on a single instance and on clusters, including a
hypothesis-driven randomized comparison."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import PostgresInstance, make_cluster

QUERY_BATTERY = [
    "SELECT count(*) FROM items",
    "SELECT sum(price), avg(price), min(price), max(price) FROM items",
    "SELECT grp, count(*), sum(price) FROM items GROUP BY grp ORDER BY grp",
    "SELECT grp, avg(price) FROM items GROUP BY grp HAVING count(*) > 2 ORDER BY grp",
    "SELECT id, price FROM items ORDER BY price DESC, id LIMIT 5",
    "SELECT id FROM items WHERE price > 50 ORDER BY id",
    "SELECT DISTINCT grp FROM items ORDER BY grp",
    "SELECT count(DISTINCT grp) FROM items",
    "SELECT i.id, c.name FROM items i JOIN cats c ON i.grp = c.cid"
    " WHERE i.id = 3",
    "SELECT c.name, count(*) FROM items i JOIN cats c ON i.grp = c.cid"
    " GROUP BY c.name ORDER BY 2 DESC, c.name",
    "SELECT grp, count(*) FILTER (WHERE price > 30) FROM items GROUP BY grp"
    " ORDER BY grp",
    "SELECT CASE WHEN price > 50 THEN 'high' ELSE 'low' END AS bucket, count(*)"
    " FROM items GROUP BY CASE WHEN price > 50 THEN 'high' ELSE 'low' END"
    " ORDER BY bucket",
    "SELECT id FROM items WHERE id IN (1, 5, 7) ORDER BY id",
    "SELECT id FROM items WHERE id BETWEEN 3 AND 6 ORDER BY id",
    "SELECT max(price) - min(price) FROM items",
    "SELECT sum(price) / count(*) FROM items",
    "SELECT i.id FROM items i WHERE EXISTS"
    " (SELECT 1 FROM tags t WHERE t.item_id = i.id) ORDER BY i.id",
    "SELECT i.id, (SELECT count(*) FROM tags t WHERE t.item_id = i.id)"
    " FROM items i WHERE i.id = 2",
    "SELECT t.label, count(*) FROM items i JOIN tags t ON i.id = t.item_id"
    " GROUP BY t.label ORDER BY t.label",
    "SELECT grp, sum(price) FROM items WHERE grp IS NOT NULL GROUP BY grp"
    " ORDER BY sum(price) DESC LIMIT 2",
]


def build(session, distributed):
    session.execute("CREATE TABLE cats (cid int PRIMARY KEY, name text)")
    session.execute(
        "CREATE TABLE items (id int PRIMARY KEY, grp int, price float)"
    )
    session.execute(
        "CREATE TABLE tags (item_id int, label text, PRIMARY KEY (item_id, label))"
    )
    if distributed:
        session.execute("SELECT create_reference_table('cats')")
        session.execute("SELECT create_distributed_table('items', 'id')")
        session.execute(
            "SELECT create_distributed_table('tags', 'item_id', colocate_with := 'items')"
        )
    session.copy_rows("cats", [[i, f"cat-{i}"] for i in range(4)])
    session.copy_rows(
        "items", [[i, i % 4, float((i * 37) % 100)] for i in range(1, 21)]
    )
    session.copy_rows(
        "tags",
        [[i, lab] for i in range(1, 21) for lab in (["hot"] if i % 2 else ["cold", "new"])],
    )
    return session


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else str(v) for v in row)
        for row in rows
    )


@pytest.fixture(scope="module")
def sessions():
    pg = build(PostgresInstance("pg").connect(), False)
    citus = build(make_cluster(2, shard_count=8).coordinator_session(), True)
    citus0 = build(make_cluster(0, shard_count=4).coordinator_session(), True)
    return pg, citus, citus0


@pytest.mark.parametrize("sql", QUERY_BATTERY, ids=lambda q: q[:44])
def test_battery_matches_across_deployments(sessions, sql):
    pg, citus, citus0 = sessions
    expected = norm(pg.execute(sql).rows)
    assert norm(citus.execute(sql).rows) == expected
    assert norm(citus0.execute(sql).rows) == expected


class TestRandomizedEquivalence:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        keys=st.lists(st.integers(min_value=-1000, max_value=1000),
                      min_size=1, max_size=30, unique=True),
        threshold=st.integers(min_value=-1000, max_value=1000),
    )
    def test_property_filters_and_aggregates_match(self, keys, threshold):
        pg = PostgresInstance("pg").connect()
        citus = make_cluster(2, shard_count=4).coordinator_session()
        for session, distributed in ((pg, False), (citus, True)):
            session.execute("CREATE TABLE r (k int PRIMARY KEY, v int)")
            if distributed:
                session.execute("SELECT create_distributed_table('r', 'k')")
            session.copy_rows("r", [[k, k * 3] for k in keys])
        for sql in (
            f"SELECT count(*) FROM r WHERE k > {threshold}",
            f"SELECT sum(v) FROM r WHERE k <= {threshold}",
            "SELECT count(*), sum(v), min(k), max(k) FROM r",
        ):
            assert norm(pg.execute(sql).rows) == norm(citus.execute(sql).rows)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(key=st.integers(min_value=-10_000, max_value=10_000))
    def test_property_point_lookup_routes_correctly(self, key):
        citus = make_cluster(2, shard_count=8).coordinator_session()
        citus.execute("CREATE TABLE r (k int PRIMARY KEY, v int)")
        citus.execute("SELECT create_distributed_table('r', 'k')")
        citus.execute("INSERT INTO r VALUES ($1, $2)", [key, key * 7])
        assert citus.execute("SELECT v FROM r WHERE k = $1", [key]).scalar() == key * 7
        assert citus.execute("SELECT count(*) FROM r").scalar() == 1
