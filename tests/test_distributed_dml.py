"""Distributed DML: multi-row inserts, COPY routing, INSERT..SELECT
strategies, DDL propagation, reference-table writes."""

import pytest

from repro.errors import NotNullViolation, UniqueViolation
from tests.conftest import explain_text


@pytest.fixture
def s(citus, citus_session):
    s = citus_session
    s.execute("CREATE TABLE ev (id int PRIMARY KEY, grp int, val int)")
    s.execute("SELECT create_distributed_table('ev', 'id')")
    return s


class TestInserts:
    def test_multi_row_insert_routes_by_hash(self, citus, s):
        s.execute("INSERT INTO ev VALUES (1, 1, 10), (2, 1, 20), (3, 2, 30)")
        assert s.execute("SELECT count(*) FROM ev").scalar() == 3
        # Each row landed on the shard owning its hash.
        from repro.engine.datum import hash_value

        ext = citus.coordinator_ext
        dist = ext.metadata.cache.get_table("ev")
        for key in (1, 2, 3):
            index = dist.shard_index_for_hash(hash_value(key))
            node = ext.metadata.cache.placement_node(dist.shards[index].shardid)
            check = citus.cluster.node(node).connect()
            found = check.execute(
                f"SELECT count(*) FROM {dist.shards[index].shard_name} WHERE id = {key}"
            ).scalar()
            check.close()
            assert found == 1

    def test_positional_insert_without_columns(self, s):
        s.execute("INSERT INTO ev VALUES (5, 9, 90)")
        assert s.execute("SELECT val FROM ev WHERE id = 5").scalar() == 90

    def test_insert_missing_dist_column_rejected(self, s):
        with pytest.raises(NotNullViolation):
            s.execute("INSERT INTO ev (grp, val) VALUES (1, 1)")

    def test_insert_null_dist_column_rejected(self, s):
        with pytest.raises(NotNullViolation):
            s.execute("INSERT INTO ev VALUES (NULL, 1, 1)")

    def test_duplicate_key_across_statements(self, s):
        s.execute("INSERT INTO ev VALUES (1, 1, 1)")
        with pytest.raises(UniqueViolation):
            s.execute("INSERT INTO ev VALUES (1, 2, 2)")

    def test_on_conflict_do_update_routed(self, s):
        s.execute("INSERT INTO ev VALUES (1, 1, 1)")
        s.execute(
            "INSERT INTO ev VALUES (1, 1, 99) ON CONFLICT (id)"
            " DO UPDATE SET val = excluded.val"
        )
        assert s.execute("SELECT val FROM ev WHERE id = 1").scalar() == 99

    def test_returning_from_distributed_insert(self, s):
        r = s.execute("INSERT INTO ev VALUES (7, 1, 70) RETURNING val")
        assert r.rows == [[70]]

    def test_volatile_function_evaluated_on_coordinator(self, citus, s):
        # md5(random()) must be computed once on the coordinator so the
        # row routes consistently with its stored value.
        s.execute("CREATE TABLE evt (eid text PRIMARY KEY, d int)")
        s.execute("SELECT create_distributed_table('evt', 'eid')")
        s.execute("INSERT INTO evt VALUES (md5(random()::text), 1)")
        eid = s.execute("SELECT eid FROM evt").scalar()
        # The row is findable by its key via the fast path.
        assert s.execute("SELECT d FROM evt WHERE eid = $1", [eid]).scalar() == 1


class TestCopy:
    def test_copy_routes_and_counts(self, s):
        rows = [[i, i % 3, i * 10] for i in range(50)]
        r = s.execute("COPY ev FROM STDIN", copy_data=rows)
        assert r.rowcount == 50
        assert s.execute("SELECT count(*) FROM ev").scalar() == 50

    def test_copy_rows_api_routes(self, s):
        n = s.copy_rows("ev", [[100, 1, 1], [101, 1, 2]])
        assert n == 2
        assert s.execute("SELECT count(*) FROM ev WHERE id >= 100").scalar() == 2

    def test_copy_csv_text(self, s):
        r = s.execute("COPY ev FROM STDIN WITH (FORMAT csv)",
                      copy_data="200,5,1\n201,5,2\n")
        assert r.rowcount == 2

    def test_copy_is_atomic_across_shards(self, citus, s):
        # A duplicate key mid-stream must roll back the entire COPY.
        s.execute("INSERT INTO ev VALUES (5, 0, 0)")
        with pytest.raises(UniqueViolation):
            s.execute("COPY ev FROM STDIN",
                      copy_data=[[4, 0, 0], [5, 0, 0], [6, 0, 0]])
        assert s.execute("SELECT count(*) FROM ev").scalar() == 1

    def test_copy_null_dist_column_rejected(self, s):
        with pytest.raises(NotNullViolation):
            s.execute("COPY ev FROM STDIN", copy_data=[[None, 1, 1]])

    def test_copy_to_reference_table_replicates(self, citus, s):
        s.execute("CREATE TABLE dims (id int PRIMARY KEY, n text)")
        s.execute("SELECT create_reference_table('dims')")
        s.copy_rows("dims", [[1, "a"], [2, "b"]])
        dist = citus.coordinator_ext.metadata.cache.get_table("dims")
        shard = dist.shards[0].shard_name
        for node in citus.cluster.node_names():
            check = citus.cluster.node(node).connect()
            assert check.execute(f"SELECT count(*) FROM {shard}").scalar() == 2
            check.close()


class TestInsertSelect:
    @pytest.fixture
    def loaded(self, citus, s):
        s.copy_rows("ev", [[i, i % 4, i] for i in range(40)])
        s.execute("CREATE TABLE rollup (id int PRIMARY KEY, doubled int)")
        s.execute("SELECT create_distributed_table('rollup', 'id',"
                  " colocate_with := 'ev')")
        s.execute("CREATE TABLE grp_rollup (grp int PRIMARY KEY, total int)")
        s.execute("SELECT create_distributed_table('grp_rollup', 'grp',"
                  " colocate_with := 'none')")
        return s

    def test_colocated_pushdown_strategy(self, citus, loaded):
        s = loaded
        r = s.execute("INSERT INTO rollup (id, doubled) SELECT id, val * 2 FROM ev")
        assert r.rowcount == 40
        assert citus.coordinator_ext.stats["insert_select_pushdown"] == 1
        assert s.execute("SELECT doubled FROM rollup WHERE id = 3").scalar() == 6

    def test_repartition_strategy(self, citus, loaded):
        s = loaded
        # Source grouped by grp (dist col of destination, not of source):
        # no merge step but not co-located → repartition.
        r = s.execute(
            "INSERT INTO grp_rollup (grp, total)"
            " SELECT grp, val FROM ev WHERE id < 4"
        )
        assert r.rowcount == 4
        assert citus.coordinator_ext.stats["insert_select_repartition"] == 1

    def test_coordinator_strategy_with_merge(self, citus, loaded):
        s = loaded
        r = s.execute(
            "INSERT INTO grp_rollup (grp, total)"
            " SELECT grp, sum(val) FROM ev GROUP BY grp"
        )
        assert r.rowcount == 4
        assert citus.coordinator_ext.stats["insert_select_coordinator"] == 1
        total = s.execute("SELECT sum(total) FROM grp_rollup").scalar()
        assert total == sum(range(40))

    def test_explain_shows_strategy(self, citus, loaded):
        text = explain_text(
            loaded, "INSERT INTO rollup (id, doubled) SELECT id, val FROM ev"
        )
        assert "Insert..Select (co-located)" in text


class TestDdlPropagation:
    def test_create_index_reaches_all_shards(self, citus, s):
        s.execute("CREATE INDEX ev_val_idx ON ev (val)")
        ext = citus.coordinator_ext
        dist = ext.metadata.cache.get_table("ev")
        for shard in dist.shards:
            node = ext.metadata.cache.placement_node(shard.shardid)
            table = citus.cluster.node(node).catalog.get_table(shard.shard_name)
            assert any("ev_val_idx" in name for name in table.indexes)

    def test_alter_add_column_everywhere(self, citus, s):
        s.execute("INSERT INTO ev VALUES (1, 1, 1)")
        s.execute("ALTER TABLE ev ADD COLUMN note text DEFAULT 'n'")
        assert s.execute("SELECT note FROM ev WHERE id = 1").scalar() == "n"
        s.execute("INSERT INTO ev (id, grp, val, note) VALUES (2, 1, 1, 'x')")
        assert s.execute("SELECT note FROM ev WHERE id = 2").scalar() == "x"

    def test_truncate_distributed(self, s):
        s.copy_rows("ev", [[i, 0, 0] for i in range(10)])
        s.execute("TRUNCATE TABLE ev")
        assert s.execute("SELECT count(*) FROM ev").scalar() == 0

    def test_vacuum_distributed(self, s):
        s.copy_rows("ev", [[i, 0, 0] for i in range(10)])
        s.execute("UPDATE ev SET val = val + 1")
        s.execute("VACUUM ev")  # propagates without error


class TestForeignKeysAcrossShards:
    def test_colocated_fk_enforced_on_shards(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE tenants (tid int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('tenants', 'tid')")
        s.execute(
            "CREATE TABLE docs (tid int, did int, PRIMARY KEY (tid, did),"
            " FOREIGN KEY (tid) REFERENCES tenants (tid))"
        )
        s.execute("SELECT create_distributed_table('docs', 'tid',"
                  " colocate_with := 'tenants')")
        s.execute("INSERT INTO tenants VALUES (1)")
        s.execute("INSERT INTO docs VALUES (1, 1)")
        from repro.errors import ForeignKeyViolation

        with pytest.raises(ForeignKeyViolation):
            s.execute("INSERT INTO docs VALUES (2, 1)")  # tenant 2 missing

    def test_fk_to_reference_table(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE kinds (kid int PRIMARY KEY)")
        s.execute("SELECT create_reference_table('kinds')")
        s.execute(
            "CREATE TABLE items (id int PRIMARY KEY, kid int"
            " REFERENCES kinds (kid))"
        )
        s.execute("SELECT create_distributed_table('items', 'id')")
        s.execute("INSERT INTO kinds VALUES (1)")
        s.execute("INSERT INTO items VALUES (10, 1)")
        from repro.errors import ForeignKeyViolation

        with pytest.raises(ForeignKeyViolation):
            s.execute("INSERT INTO items VALUES (11, 99)")
