"""The PostgreSQL extension hook surface as a contract (§3.1).

Citus is "the first distributed database that delivers its functionality
through the PostgreSQL extension APIs" — these tests pin down that API on
the engine side: planner hooks (CustomScan), utility hooks, transaction
callbacks, background workers, UDFs — and verify that multiple extensions
compose (and can conflict, the Citus/TimescaleDB story of §6)."""

import pytest

from repro.engine import PostgresInstance, QueryResult
from repro.engine.hooks import CustomScanPlan
from repro.sql import ast as A


class RecordingPlan(CustomScanPlan):
    def __init__(self, marker):
        self.marker = marker

    def execute(self, session, params):
        return QueryResult(["marker"], [[self.marker]])

    def explain_lines(self):
        return [f"Custom Scan ({self.marker})"]


class TestPlannerHook:
    def test_hook_replaces_local_planning(self, pg):
        pg.hooks.planner_hooks.append(
            lambda session, stmt, params: RecordingPlan("mine")
            if isinstance(stmt, A.Select) else None
        )
        s = pg.connect()
        assert s.execute("SELECT 1").rows == [["mine"]]

    def test_hook_returning_none_falls_through(self, pg):
        calls = []
        pg.hooks.planner_hooks.append(
            lambda session, stmt, params: calls.append(1) or None
        )
        s = pg.connect()
        assert s.execute("SELECT 40 + 2").scalar() == 42
        assert calls  # consulted, declined

    def test_first_extension_wins(self, pg):
        pg.hooks.planner_hooks.append(
            lambda session, stmt, params: RecordingPlan("first")
        )
        pg.hooks.planner_hooks.append(
            lambda session, stmt, params: RecordingPlan("second")
        )
        s = pg.connect()
        # The §6 conflict: two extensions claiming the planner hook cannot
        # both apply; registration order decides.
        assert s.execute("SELECT 1").rows == [["first"]]

    def test_explain_uses_custom_plan(self, pg):
        pg.hooks.planner_hooks.append(
            lambda session, stmt, params: RecordingPlan("probe")
        )
        s = pg.connect()
        assert s.execute("EXPLAIN SELECT 1").rows == [["Custom Scan (probe)"]]


class TestUtilityHook:
    def test_hook_intercepts_ddl(self, pg):
        intercepted = []

        def hook(session, stmt):
            if isinstance(stmt, A.CreateTable) and stmt.name.startswith("magic_"):
                intercepted.append(stmt.name)
                return QueryResult([], [], command="CREATE TABLE")
            return None

        pg.hooks.utility_hooks.append(hook)
        s = pg.connect()
        s.execute("CREATE TABLE magic_t (a int)")
        assert intercepted == ["magic_t"]
        assert not pg.catalog.has_table("magic_t")  # fully intercepted
        s.execute("CREATE TABLE normal_t (a int)")
        assert pg.catalog.has_table("normal_t")


class TestTransactionCallbacks:
    def test_commit_callback_ordering(self, pg):
        events = []
        pg.hooks.pre_commit_callbacks.append(lambda s: events.append("pre"))
        pg.hooks.post_commit_callbacks.append(lambda s: events.append("post"))
        pg.hooks.abort_callbacks.append(lambda s: events.append("abort"))
        s = pg.connect()
        s.execute("CREATE TABLE t (a int)")
        events.clear()
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (1)")
        s.execute("COMMIT")
        assert events == ["pre", "post"]

    def test_abort_callback_on_rollback(self, pg):
        events = []
        pg.hooks.abort_callbacks.append(lambda s: events.append("abort"))
        s = pg.connect()
        s.execute("CREATE TABLE t (a int)")
        events.clear()
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (1)")
        s.execute("ROLLBACK")
        assert events == ["abort"]

    def test_pre_commit_exception_aborts(self, pg):
        def veto(session):
            raise RuntimeError("vetoed by extension")

        pg.hooks.pre_commit_callbacks.append(veto)
        s = pg.connect()
        s.execute("CREATE TABLE t (a int)")  # autocommit also vetoed? Yes:
        # actually the CREATE already committed before we appended... create
        # first, then register the veto for the data transaction below.
        pg.hooks.pre_commit_callbacks.remove(veto)
        pg.hooks.pre_commit_callbacks.append(veto)
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(RuntimeError):
            s.execute("COMMIT")
        pg.hooks.pre_commit_callbacks.remove(veto)
        assert s.execute("SELECT count(*) FROM t").scalar() == 0


class TestBackgroundWorkers:
    def test_registered_worker_runs_on_interval(self):
        from repro.net import SimClock

        clock = SimClock()
        pg = PostgresInstance("bg", clock=clock)
        runs = []
        pg.register_background_worker("ticker", lambda inst: runs.append(1),
                                      interval=2.0)
        pg.run_background_workers()
        clock.advance(2.5)
        pg.run_background_workers()
        clock.advance(0.5)
        pg.run_background_workers()  # only 0.5s since last: no run
        assert len(runs) == 2

    def test_force_runs_immediately(self, pg):
        runs = []
        pg.register_background_worker("t", lambda inst: runs.append(1))
        pg.run_background_workers(force=True)
        pg.run_background_workers(force=True)
        assert len(runs) == 2


class TestUdfRegistry:
    def test_udf_callable_from_select(self, pg):
        pg.catalog.register_function(
            "my_udf", lambda session, x: x * 2
        )
        s = pg.connect()
        assert s.execute("SELECT my_udf(21)").scalar() == 42

    def test_udf_can_run_queries(self, pg):
        def counting_udf(session, table):
            return session.execute(f"SELECT count(*) FROM {table}").scalar()

        pg.catalog.register_function("row_count", counting_udf)
        s = pg.connect()
        s.execute("CREATE TABLE t (a int)")
        s.execute("INSERT INTO t VALUES (1), (2)")
        assert s.execute("SELECT row_count('t')").scalar() == 2


class TestComposition:
    def test_second_extension_composes_with_citus(self, citus, citus_session):
        """An auditing extension alongside Citus: sees the same statements,
        doesn't disturb distributed planning."""
        audited = []

        def audit_hook(session, stmt, params):
            if isinstance(stmt, A.Select):
                audited.append(type(stmt).__name__)
            return None  # never claims the plan

        # Install *before* Citus's hook position? Order matters; appending
        # after still observes because it returns None... but Citus returns
        # a plan first. Insert the auditor ahead.
        citus.coordinator.hooks.planner_hooks.insert(0, audit_hook)
        s = citus_session
        s.execute("CREATE TABLE t (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('t', 'k')")
        s.execute("INSERT INTO t VALUES (1)")
        audited.clear()
        assert s.execute("SELECT count(*) FROM t").scalar() == 1
        assert audited  # the auditor observed the distributed query


class TestDrainNode:
    def test_drain_empties_node(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE t (k int PRIMARY KEY, v int)")
        s.execute("SELECT create_distributed_table('t', 'k')")
        s.copy_rows("t", [[i, i] for i in range(40)])
        checksum = s.execute("SELECT sum(v), count(*) FROM t").first()
        moved = s.execute("SELECT citus_drain_node('worker1')").scalar()
        assert moved > 0
        cache = citus.coordinator_ext.metadata.cache
        assert all(node != "worker1" for node in cache.placements.values())
        assert s.execute("SELECT sum(v), count(*) FROM t").first() == checksum
