"""The Citus UDF management surface: sizes, config, worker commands,
distributed DROP INDEX, and the named-argument convention."""

import pytest

from repro.errors import MetadataError


@pytest.fixture
def s(citus, citus_session):
    s = citus_session
    s.execute("CREATE TABLE t (k int PRIMARY KEY, payload text)")
    s.execute("SELECT create_distributed_table('t', 'k')")
    s.copy_rows("t", [[i, "x" * 50] for i in range(60)])
    return s


class TestSizeAndConfig:
    def test_citus_table_size_counts_shard_bytes(self, citus, s):
        size = s.execute("SELECT citus_table_size('t')").scalar()
        assert size > 60 * 50  # at least the payload bytes

    def test_citus_set_config_changes_guc(self, citus, s):
        s.execute("SELECT citus_set_config('shard_count', 16)")
        assert citus.coordinator_ext.config.shard_count == 16
        s.execute("CREATE TABLE t2 (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('t2', 'k', colocate_with := 'none')")
        assert citus.coordinator_ext.metadata.cache.get_table("t2").shard_count == 16

    def test_unknown_config_rejected(self, s):
        with pytest.raises(MetadataError):
            s.execute("SELECT citus_set_config('nonsense', 1)")


class TestRunCommandOnWorkers:
    def test_command_runs_everywhere(self, citus, s):
        results = s.execute(
            "SELECT run_command_on_workers('CREATE TABLE wtab (a int)')"
        ).scalar()
        assert all(r.endswith("OK") for r in results)
        for name in citus.worker_names():
            assert citus.cluster.node(name).catalog.has_table("wtab")

    def test_errors_reported_per_node(self, citus, s):
        s.execute("SELECT run_command_on_workers('CREATE TABLE dup (a int)')")
        results = s.execute(
            "SELECT run_command_on_workers('CREATE TABLE dup (a int)')"
        ).scalar()
        assert all("ERROR" in r for r in results)


class TestDistributedDropIndex:
    def test_drop_index_propagates(self, citus, s):
        s.execute("CREATE INDEX t_payload_idx ON t (payload)")
        ext = citus.coordinator_ext
        dist = ext.metadata.cache.get_table("t")
        shard = dist.shards[0]
        node = ext.metadata.cache.placement_node(shard.shardid)
        shard_table = citus.cluster.node(node).catalog.get_table(shard.shard_name)
        assert any("t_payload_idx" in n for n in shard_table.indexes)
        s.execute("DROP INDEX t_payload_idx")
        assert not any("t_payload_idx" in n for n in shard_table.indexes)
        shell = citus.coordinator.catalog.get_table("t")
        assert "t_payload_idx" not in shell.indexes


class TestNamedArguments:
    def test_positional_and_named_mix(self, citus, s):
        s.execute("CREATE TABLE nm (k int PRIMARY KEY)")
        s.execute(
            "SELECT create_distributed_table('nm', 'k', shard_count := 4,"
            " colocate_with := 'none')"
        )
        assert citus.coordinator_ext.metadata.cache.get_table("nm").shard_count == 4


class TestAddNodeIdempotent:
    def test_duplicate_add_node_is_noop(self, citus, s):
        before = list(citus.coordinator_ext.metadata.cache.nodes)
        s.execute("SELECT citus_add_node('worker1')")
        assert citus.coordinator_ext.metadata.cache.nodes == before
