"""Adaptive executor tests: slow start, shared connection limits,
connection caching, and transaction affinity (§3.6.1)."""

import pytest

from tests.conftest import find_keys_on_distinct_nodes


@pytest.fixture
def s(citus, citus_session):
    s = citus_session
    s.execute("CREATE TABLE t (k int PRIMARY KEY, v int)")
    s.execute("SELECT create_distributed_table('t', 'k')")
    for k in range(1, 17):
        s.execute("INSERT INTO t VALUES ($1, $2)", [k, k])
    return s


class TestSlowStart:
    def test_single_task_uses_one_connection(self, citus, s):
        executor = citus.coordinator_ext.executor
        s.execute("SELECT * FROM t WHERE k = 1")
        report = executor.last_report
        assert report.task_count == 1
        assert report.connections_used == 1

    def test_fast_tasks_do_not_fan_out(self, citus, s):
        # Sub-millisecond tasks finish before the 10ms slow-start step, so
        # few extra connections open even with 4 tasks per worker.
        executor = citus.coordinator_ext.executor
        s.execute("SELECT count(*) FROM t")
        report = executor.last_report
        assert report.task_count == 8
        assert report.connections_used <= 4  # ~1-2 per worker

    def test_slow_tasks_open_more_connections(self, citus, s):
        # Make per-row cost large so each task takes >> 10ms: slow start
        # should ramp up parallelism.
        config = citus.coordinator_ext.config
        old = config.per_row_cpu_cost
        config.per_row_cpu_cost = 0.02  # 20ms per row
        try:
            s.execute("SELECT * FROM t")
            report = citus.coordinator_ext.executor.last_report
            assert report.connections_used > 2
        finally:
            config.per_row_cpu_cost = old

    def test_elapsed_is_max_not_sum(self, citus, s):
        config = citus.coordinator_ext.config
        old = config.per_row_cpu_cost
        config.per_row_cpu_cost = 0.01
        try:
            s.execute("SELECT * FROM t")  # 16 rows over 8 tasks
            report = citus.coordinator_ext.executor.last_report
            # Sum of costs would be >= 0.16s; parallel max must be lower.
            assert report.elapsed < 0.16
        finally:
            config.per_row_cpu_cost = old


class TestSharedConnectionLimit:
    def test_limit_caps_fanout(self, citus, s):
        config = citus.coordinator_ext.config
        config.max_shared_pool_size = 1
        old = config.per_row_cpu_cost
        config.per_row_cpu_cost = 0.02
        try:
            s.execute("SELECT * FROM t")
            report = citus.coordinator_ext.executor.last_report
            # 1 slot per worker (the first is never starved): ≤ 2 total.
            assert report.connections_used <= 2
            assert citus.coordinator_ext.stats["shared_pool_throttled"] > 0
        finally:
            config.max_shared_pool_size = 100
            config.per_row_cpu_cost = old

    def test_slots_released_on_pool_close(self, citus, s):
        from repro.citus.executor.placement import SessionPools

        ext = citus.coordinator_ext
        s.execute("SELECT count(*) FROM t")
        used_before = dict(ext._shared_slots)
        pools = SessionPools.for_session(s, ext)
        pools.close_all()
        assert sum(ext._shared_slots.values()) < sum(used_before.values())


class TestConnectionCaching:
    def test_connections_reused_across_statements(self, citus, s):
        s.execute("SELECT count(*) FROM t")
        opened_first = s.stats["citus_connections"]
        s.execute("SELECT count(*) FROM t")
        # Second statement reuses cached connections: no growth (or tiny).
        assert s.stats["citus_connections"] == opened_first

    def test_worker_connection_count_bounded(self, citus, s):
        for _ in range(20):
            s.execute("SELECT count(*) FROM t")
        for name in citus.worker_names():
            # One cached connection per session per worker (plus utility).
            assert citus.cluster.node(name).connection_count <= 4


class TestTransactionAffinity:
    def test_same_group_same_connection_in_txn(self, citus, s):
        from repro.citus.executor.placement import SessionPools

        k1, k2 = find_keys_on_distinct_nodes(citus, "t")
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 1 WHERE k = $1", [k1])
        pools = SessionPools.for_session(s, citus.coordinator_ext)
        conn_before = pools.all_connections()
        groups_before = {id(c): set(c.accessed_groups) for c in conn_before}
        s.execute("UPDATE t SET v = 2 WHERE k = $1", [k1])  # same shard
        # No new txn connection was created for the same shard group.
        assert len(pools.txn_connections()) == 1
        s.execute("COMMIT")

    def test_multi_shard_read_sees_txn_writes(self, citus, s):
        # The read of a modified shard must use the writing connection.
        k1, _ = find_keys_on_distinct_nodes(citus, "t")
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 777 WHERE k = $1", [k1])
        total = s.execute("SELECT count(*) FROM t WHERE v = 777").scalar()
        assert total == 1
        s.execute("ROLLBACK")

    def test_affinity_cleared_after_commit(self, citus, s):
        from repro.citus.executor.placement import SessionPools

        k1, _ = find_keys_on_distinct_nodes(citus, "t")
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 1 WHERE k = $1", [k1])
        s.execute("COMMIT")
        pools = SessionPools.for_session(s, citus.coordinator_ext)
        assert all(not c.accessed_groups for c in pools.all_connections())
        assert all(not c.in_txn_block for c in pools.all_connections())


class TestClockAccounting:
    def test_clock_advances_with_queries(self, citus, s):
        before = citus.cluster.clock.now()
        s.execute("SELECT count(*) FROM t")
        assert citus.cluster.clock.now() > before

    def test_network_counters_grow(self, citus, s):
        before = citus.cluster.network.messages_sent
        s.execute("SELECT count(*) FROM t")
        assert citus.cluster.network.messages_sent >= before + 8
