"""Active Session History: deterministic sampling, report modes,
flamegraph reconciliation, GUC toggles, reset scope, and the harness's
ASH-driven SLO diagnostics."""

from __future__ import annotations

import json

import pytest

from repro import make_cluster
from repro.citus.extension import CitusConfig
from repro.errors import MetadataError
from repro.workloads.traffic import (
    LatencyRule,
    TrafficConfig,
    TrafficHarness,
)


def _set(session, name, value):
    session.execute("SELECT citus_set_config(:n, :v)", {"n": name, "v": value})


def _samples(session, *args):
    sql = "SELECT citus_ash(" + ", ".join(
        f":a{i}" for i in range(len(args))) + ")" if args else \
        "SELECT citus_ash()"
    return session.execute(sql, {f"a{i}": v for i, v in enumerate(args)}).scalar()


# --------------------------------------------------------- sampler core


class TestSamplingLoop:
    def test_samples_every_crossed_boundary(self, citus):
        s = citus.coordinator_session("probe")
        _set(s, "ash_sampling_interval", 0.5)
        clock = citus.cluster.clock
        clock.advance(1.2)  # crosses 0.5 and 1.0
        times = sorted({row[0] for row in _samples(s)})
        assert times == [0.5, 1.0]

    def test_time_zero_is_never_sampled(self, citus):
        s = citus.coordinator_session("probe")
        _set(s, "ash_sampling_interval", 0.5)
        citus.cluster.clock.advance(0.4)  # no boundary crossed
        assert _samples(s) == []

    def test_landing_exactly_on_boundary_samples_once(self, citus):
        s = citus.coordinator_session("probe")
        _set(s, "ash_sampling_interval", 1.0)
        clock = citus.cluster.clock
        clock.advance_to(2.0)  # samples t=1.0 and t=2.0
        clock.advance(1.0)  # samples t=3.0 only — no resample of 2.0
        times = [row[0] for row in _samples(s)]
        per_tick = times.count(1.0)
        assert times.count(2.0) == per_tick
        assert times.count(3.0) == per_tick

    def test_every_alive_node_session_is_sampled(self, citus):
        s = citus.coordinator_session("probe")
        _set(s, "ash_sampling_interval", 1.0)
        citus.cluster.clock.advance(1.0)
        rows = _samples(s)
        # The probe session itself must be among the sampled sessions.
        assert any(row[2] == "coordinator" for row in rows)
        # Every sample carries a cluster-unique global PID and a state.
        assert all(isinstance(row[1], int) and row[3] for row in rows)

    def test_live_wait_stack_is_captured_in_full(self, citus):
        s = citus.coordinator_session("probe")
        _set(s, "ash_sampling_interval", 0.5)
        stack = s.wait_events
        outer = stack.begin("Client", "PoolLease")
        inner = stack.begin("Lock", "tuple")
        citus.cluster.clock.advance(0.6)
        stack.finish(inner)
        stack.finish(outer)
        mine = [row for row in _samples(s)
                if row[6] == "Client.PoolLease>Lock.tuple"]
        assert mine, "nested stack not captured bottom-to-top"
        # The reported wait is the top frame; the stack column keeps all.
        assert mine[0][4] == "Lock" and mine[0][5] == "tuple"

    def test_ring_is_bounded_and_keeps_newest(self, citus):
        s = citus.coordinator_session("probe")
        _set(s, "ash_sampling_interval", 1.0)
        _set(s, "ash_buffer_size", 5)
        for _ in range(20):
            citus.cluster.clock.advance(1.0)
        rows = _samples(s)
        assert len(rows) == 5
        assert rows[-1][0] == 20.0  # newest retained

    def test_range_filter_is_inclusive(self, citus):
        s = citus.coordinator_session("probe")
        _set(s, "ash_sampling_interval", 1.0)
        for _ in range(5):
            citus.cluster.clock.advance(1.0)
        windowed = {row[0] for row in _samples(s, "samples", 2.0, 4.0)}
        assert windowed == {2.0, 3.0, 4.0}


# ------------------------------------------------------------ gating


class TestGating:
    def test_disable_detaches_observer_and_udf_goes_quiet(self, citus):
        s = citus.coordinator_session("probe")
        _set(s, "enable_ash", False)
        assert citus.coordinator_ext.ash is None
        for node in citus.cluster.nodes.values():
            assert node.extensions["citus"].ash is None
        assert citus.cluster.clock._observers == []
        citus.cluster.clock.advance(5.0)
        assert _samples(s) == []
        assert _samples(s, "flamegraph") == ""

    def test_reenable_resumes_with_history_intact(self, citus):
        s = citus.coordinator_session("probe")
        _set(s, "ash_sampling_interval", 1.0)
        citus.cluster.clock.advance(1.0)
        before = len(_samples(s))
        assert before > 0
        _set(s, "enable_ash", False)
        citus.cluster.clock.advance(10.0)  # unsampled gap
        _set(s, "enable_ash", True)
        citus.cluster.clock.advance(1.0)  # samples t=12.0
        rows = _samples(s)
        assert len(rows) > before  # old history survived the off period
        assert {row[0] for row in rows} == {1.0, 12.0}

    def test_detached_at_create_never_builds_a_sampler(self):
        citus = make_cluster(workers=2, shard_count=8,
                             config=CitusConfig(enable_ash=False))
        assert citus.coordinator_ext.ash is None
        assert citus.cluster.clock._observers == []
        assert not hasattr(citus.cluster, "_citus_ash_sampler")

    def test_reset_scope_clears_ring_only(self, citus):
        s = citus.coordinator_session("probe")
        _set(s, "ash_sampling_interval", 1.0)
        citus.cluster.clock.advance(3.0)
        assert _samples(s)
        s.execute("SELECT citus_stat_reset('ash')")
        assert _samples(s) == []
        # The lifetime sampling counters belong to the 'counters' scope.
        counters = {r[0]: r[2]
                    for r in s.execute("SELECT citus_stat_counters()").scalar()
                    if r[1] is None}
        assert counters.get("ash_sample_ticks", 0) > 0

    def test_reset_all_clears_the_ring_too(self, citus):
        s = citus.coordinator_session("probe")
        _set(s, "ash_sampling_interval", 1.0)
        citus.cluster.clock.advance(3.0)
        s.execute("SELECT citus_stat_reset('all')")
        assert _samples(s) == []

    def test_unknown_scope_message_and_docstring_list_ash(self, citus):
        s = citus.coordinator_session("probe")
        with pytest.raises(MetadataError, match="ash"):
            s.execute("SELECT citus_stat_reset('bogus')")
        doc = citus.coordinator_ext.instance.catalog.get_function(
            "citus_stat_reset").fn.__doc__
        assert "'ash'" in doc

    def test_unknown_report_mode_is_rejected(self, citus):
        s = citus.coordinator_session("probe")
        with pytest.raises(MetadataError, match="flamegraph"):
            _samples(s, "bogus")


# ------------------------------------------------ traffic-run acceptance


def smoke_config(**overrides) -> TrafficConfig:
    base = dict(
        sessions=100,
        tenants=40,
        sim_duration=10.0,
        think_mean=1.0,
        ramp_seconds=2.0,
        seed=777,
    )
    base.update(overrides)
    return TrafficConfig(**base)


def _traffic_cluster():
    # A sub-second sampling interval so the 10s smoke run lands thousands
    # of samples, including mid-statement ones.
    return make_cluster(workers=2, shard_count=8, max_connections=2000,
                        config=CitusConfig(ash_sampling_interval=0.05))


@pytest.fixture(scope="module")
def ash_run():
    """One shared 100-session traffic run with ASH sampling at 50ms."""
    citus = _traffic_cluster()
    harness = TrafficHarness(citus, smoke_config())
    harness.run()
    return citus, harness


class TestTrafficRun:
    def test_flamegraph_counts_sum_to_ring_total(self, ash_run):
        citus, _ = ash_run
        s = citus.coordinator_session("report")
        ring = _samples(s)
        flamegraph = _samples(s, "flamegraph")
        assert ring and flamegraph
        total = 0
        for line in flamegraph.splitlines():
            stack, _, count = line.rpartition(" ")
            frames = stack.split(";")
            # Every line: node first, then at least one (class, event)
            # pair, i.e. an odd frame count unless a fingerprint rides at
            # the end.
            assert frames[0] in ("coordinator", "worker1", "worker2")
            assert len(frames) >= 3
            assert int(count) > 0
            total += int(count)
        assert total == len(ring)

    def test_raw_sample_times_are_monotonic(self, ash_run):
        citus, _ = ash_run
        s = citus.coordinator_session("report")
        times = [row[0] for row in _samples(s)]
        assert times == sorted(times)

    def test_top_waits_percentages_cover_the_ring(self, ash_run):
        citus, _ = ash_run
        s = citus.coordinator_session("report")
        rows = _samples(s, "top_waits")
        assert rows
        assert sum(r[2] for r in rows) == len(_samples(s))
        assert abs(sum(r[3] for r in rows) - 100.0) < 1.0
        # Busiest first.
        assert [r[2] for r in rows] == sorted(
            (r[2] for r in rows), reverse=True)

    def test_top_queries_report_fingerprints_with_waits(self, ash_run):
        citus, _ = ash_run
        s = citus.coordinator_session("report")
        rows = _samples(s, "top_queries")
        assert rows
        for fp, samples, pct, top_wait in rows:
            assert fp and samples > 0 and 0 < pct <= 100.0
            assert "." in top_wait

    def test_top_tenants_see_the_zipf_skew(self, ash_run):
        citus, _ = ash_run
        s = citus.coordinator_session("report")
        rows = _samples(s, "top_tenants")
        assert rows
        assert rows[0][1] == max(r[1] for r in rows)

    def test_timeline_buckets_reconcile(self, ash_run):
        citus, _ = ash_run
        s = citus.coordinator_session("report")
        rows = _samples(s, "timeline")
        assert rows
        assert sum(r[3] for r in rows) == len(_samples(s))
        for _b, start, end, samples, active, idle, wait_json in rows:
            assert end > start
            assert active + idle == samples
            json.loads(wait_json)  # valid sorted-key JSON

    def test_metrics_snapshot_exports_ash_families(self, ash_run):
        citus, _ = ash_run
        s = citus.coordinator_session("report")
        text = s.execute("SELECT citus_metrics_snapshot()").scalar()
        assert "citus_ash_ring_samples " in text
        assert "citus_ash_ring_capacity " in text
        assert 'citus_ash_node_samples{node="worker1"}' in text
        assert "citus_ash_samples_total" in text
        # The ring gauge agrees with the UDF.
        ring_line = next(line for line in text.splitlines()
                         if line.startswith("citus_ash_ring_samples "))
        assert int(ring_line.split()[1]) == len(_samples(s))

    def test_same_seed_runs_produce_identical_ash_dumps(self):
        dumps = []
        for _ in range(2):
            citus = _traffic_cluster()
            TrafficHarness(citus, smoke_config()).run()
            s = citus.coordinator_session("dump")
            dumps.append((
                _samples(s, "flamegraph"),
                json.dumps(_samples(s), sort_keys=True),
            ))
        assert dumps[0] == dumps[1]

    def test_slo_failure_embeds_ash_diagnostics(self):
        citus = _traffic_cluster()
        harness = TrafficHarness(citus, smoke_config())
        harness.run()
        impossible = [LatencyRule("everything instant", percentile=95,
                                  max_ms=1e-9)]
        report = harness.report(impossible)
        assert not report["slo"]["passed"]
        assert report["slo"]["failed_rules"] == ["everything instant"]
        ash = report["ash"]
        assert ash["samples"] > 0
        assert ash["window"] == [harness._sim_start, harness._sim_end]
        assert 0 < len(ash["top_waits"]) <= 5
        assert 0 < len(ash["top_queries"]) <= 5
        assert ash["headline"] is None or "% of ASH samples in" in ash["headline"]

    def test_passing_slo_report_omits_ash_section(self, ash_run):
        _, harness = ash_run
        report = harness.report()
        assert report["slo"]["passed"]
        assert "ash" not in report
