"""End-to-end distributed tracing, citus_stat_statements, and EXPLAIN
ANALYZE: span-tree parity across executor planes, histogram percentile
math, per-fingerprint telemetry, 2PC span nesting, slow-query log, and
the Chrome trace export."""

from __future__ import annotations

import json

import pytest

from repro import make_cluster
from repro.citus.extension import CitusConfig
from repro.engine.stats import LogHistogram

from .conftest import find_keys_on_distinct_nodes


def _setup_items(cc, rows: int = 64):
    s = cc.coordinator_session()
    s.execute("CREATE TABLE items (k int PRIMARY KEY, v text)")
    s.execute("SELECT create_distributed_table('items', 'k')")
    s.copy_rows("items", [[i, f"val{i}"] for i in range(rows)])
    return s


# ------------------------------------------------------- histogram math


class TestLogHistogram:
    def test_percentiles_track_a_uniform_distribution(self):
        h = LogHistogram()
        values = [i / 1000.0 for i in range(1, 1001)]  # uniform 0.001..1.0
        for v in values:
            h.observe(v)
        p50, p95, p99 = h.percentile(50), h.percentile(95), h.percentile(99)
        # Bucket upper bounds overestimate by at most one factor (1.5x),
        # and the clamp keeps everything inside the observed range.
        assert 0.5 <= p50 <= 0.5 * 1.5
        assert 0.95 <= p95 <= 1.0
        assert 0.99 <= p99 <= 1.0
        assert p50 <= p95 <= p99
        assert h.count == 1000
        assert h.sum == pytest.approx(sum(values))
        assert h.min == 0.001 and h.max == 1.0

    def test_constant_distribution_collapses_to_the_value(self):
        h = LogHistogram()
        for _ in range(100):
            h.observe(0.25)
        assert h.percentile(50) == 0.25
        assert h.percentile(99) == 0.25

    def test_bimodal_distribution(self):
        h = LogHistogram()
        for _ in range(90):
            h.observe(0.001)
        for _ in range(10):
            h.observe(1.0)
        assert h.percentile(50) <= 0.002  # fast mode
        assert h.percentile(95) == 1.0  # slow mode, clamped to max
        assert h.percentile(99) == 1.0
        assert h.mean == pytest.approx((90 * 0.001 + 10 * 1.0) / 100)

    def test_merge_accumulates(self):
        a, b = LogHistogram(), LogHistogram()
        for v in (0.01, 0.02, 0.03):
            a.observe(v)
        for v in (0.5, 0.6):
            b.observe(v)
        a.merge(b)
        assert a.count == 5
        assert a.max == 0.6 and a.min == 0.01
        assert a.percentile(99) == 0.6


# --------------------------------------------------------- span parity


def _run_traced_select(streaming: bool):
    cc = make_cluster(
        workers=2, shard_count=8,
        config=CitusConfig(enable_streaming_pipeline=streaming),
    )
    s = _setup_items(cc)
    s.execute("SELECT k, v FROM items ORDER BY k")
    return cc.coordinator_ext.tracer.buffer[-1]


def test_span_parity_streaming_vs_materialized():
    """The same SQL yields the same span-tree shape on both executor
    planes — tier, task count, task nodes, merge span, rows, and wire
    bytes all match; only the per-batch cursor spans differ."""
    t_stream = _run_traced_select(streaming=True)
    t_mat = _run_traced_select(streaming=False)

    assert t_stream.tier == t_mat.tier == "pushdown"
    assert t_stream.rows == t_mat.rows == 64

    stream_tasks = t_stream.find("executor", "task")
    mat_tasks = t_mat.find("executor", "task")
    assert len(stream_tasks) == len(mat_tasks) == 8
    assert ({sp.node for sp in stream_tasks}
            == {sp.node for sp in mat_tasks}
            == {"worker1", "worker2"})
    # Per-task row counts agree (same shards, same data).
    by_index = lambda spans: sorted(
        (sp.attrs["index"], sp.attrs["rows"]) for sp in spans
    )
    assert by_index(stream_tasks) == by_index(mat_tasks)

    assert len(t_stream.find("merge")) == len(t_mat.find("merge")) == 1

    # Both planes price the wire identically: the blocking plane charges
    # each response at its actual row bytes, so statement-level totals
    # match the cursor batches byte for byte.
    assert t_stream.bytes == t_mat.bytes > 0

    # Only the streaming plane has cursor batch spans.
    assert t_stream.find("network", "batch")
    assert not t_mat.find("network", "batch")


def test_task_spans_carry_queue_and_connection_detail(citus):
    _setup_items(citus)
    # A fresh session has no pooled executor connections yet, so the
    # establishment cost lands inside this statement's trace.
    s = citus.coordinator_session()
    s.execute("SELECT count(*) FROM items")
    trace = citus.coordinator_ext.tracer.buffer[-1]
    tasks = trace.find("executor", "task")
    assert len(tasks) == 8
    for sp in tasks:
        assert sp.attrs["bytes"] > 0
        assert sp.attrs["retries"] == 0
        assert sp.duration > 0
    # Connection establishment shows up as network spans.
    assert trace.find("network", "connect")
    # The planner annotated the trace and emitted a plan event.
    (plan_event,) = trace.find("planner", "plan")
    assert plan_event.attrs["tier"] == "pushdown"
    assert plan_event.attrs["tasks"] == 8


# ----------------------------------------------------- stat statements


def test_stat_statements_mixed_workload(citus):
    s = _setup_items(citus)
    s.execute("SELECT citus_stat_statements_reset()")
    for _ in range(3):
        s.execute("SELECT v FROM items WHERE k = 7")
    for _ in range(4):
        s.execute("SELECT count(*) FROM items")
    rows = s.execute("SELECT citus_stat_statements()").scalar()
    # [query, partition_key, tier, calls, total_ms, min_ms, max_ms,
    #  p50_ms, p95_ms, p99_ms, rows, bytes, plan_cache_hits]
    assert len(rows) >= 2  # two distinct fingerprints at least

    (tenant_row,) = [r for r in rows if r[1] == 7]
    assert tenant_row[2] in ("fast_path", "router")
    assert tenant_row[3] == 3  # calls
    assert tenant_row[12] >= 2  # replayed from the plan cache after call 1

    (multi_row,) = [r for r in rows if "count" in r[0]]
    assert multi_row[1] is None  # no single tenant for multi-shard scans
    assert multi_row[2] == "pushdown"
    assert multi_row[3] == 4
    assert multi_row[10] == 4  # one aggregate row per call
    assert multi_row[11] > 0  # wire bytes

    for r in rows:
        total, mn, mx, p50, p95, p99 = r[4], r[5], r[6], r[7], r[8], r[9]
        assert p50 <= p95 <= p99
        assert mn <= p50 and p99 <= mx + 1e-9
        assert total >= mx

    assert s.execute("SELECT citus_stat_statements_reset()").scalar() is True
    assert s.execute("SELECT citus_stat_statements()").scalar() == []


def test_stat_statements_separates_tenants(citus):
    s = _setup_items(citus)
    s.execute("SELECT citus_stat_statements_reset()")
    k1, k2 = find_keys_on_distinct_nodes(citus, "items")
    s.execute(f"SELECT v FROM items WHERE k = {k1}")
    s.execute(f"SELECT v FROM items WHERE k = {k2}")
    rows = s.execute("SELECT citus_stat_statements()").scalar()
    tenants = {r[1] for r in rows}
    assert {k1, k2} <= tenants  # same fingerprint, one entry per tenant


# ----------------------------------------------------- explain analyze


def test_explain_analyze_multi_shard_order_by_limit(citus):
    s = _setup_items(citus, rows=100)
    text = "\n".join(
        r[0] for r in s.execute(
            "EXPLAIN ANALYZE SELECT k, v FROM items ORDER BY k LIMIT 10"
        ).rows
    )
    assert "Custom Scan (Citus Adaptive)" in text
    assert "Task Count: 8" in text
    # Per-task actuals from the streaming cursors.
    assert "actual rows=" in text
    assert "batches=" in text
    # The coordinator merge span with its measured actuals.
    assert "Merge:" in text
    assert "Execution: rows=10 time=" in text


def test_explain_analyze_works_while_tracing_disabled():
    cc = make_cluster(workers=2, shard_count=8,
                      config=CitusConfig(enable_tracing=False))
    s = _setup_items(cc)
    assert not cc.coordinator_ext.tracer.buffer  # nothing recorded
    text = "\n".join(
        r[0] for r in s.execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM items"
        ).rows
    )
    # capture() collects spans for the one statement regardless of the
    # citus.enable_tracing GUC...
    assert "actual rows=" in text
    assert "Execution: rows=1 time=" in text
    # ...without recording anything into the trace buffer.
    assert not cc.coordinator_ext.tracer.buffer


def test_explain_analyze_udf(citus):
    s = _setup_items(citus)
    text = s.execute(
        "SELECT citus_explain_analyze('SELECT count(*) FROM items')"
    ).scalar()
    assert "Custom Scan (Citus Adaptive)" in text
    assert "Execution: rows=1 time=" in text


# ------------------------------------------------------------- 2PC spans


def test_2pc_spans_nest_under_the_commit_statement(citus):
    s = _setup_items(citus)
    k1, k2 = find_keys_on_distinct_nodes(citus, "items")
    s.execute("BEGIN")
    s.execute(f"UPDATE items SET v = 'x' WHERE k = {k1}")
    s.execute(f"UPDATE items SET v = 'y' WHERE k = {k2}")
    s.execute("COMMIT")
    trace = citus.coordinator_ext.tracer.buffer[-1]
    assert trace.root.name == "Commit"
    prepares = trace.find("2pc", "2pc.prepare")
    commits = trace.find("2pc", "2pc.commit_prepared")
    assert len(prepares) == 2 and len(commits) == 2
    assert {sp.node for sp in prepares} == {"worker1", "worker2"}
    assert trace.find("2pc", "2pc.commit_records")
    for sp in prepares:
        assert sp.attrs["gid"].startswith("citus_")
        assert sp.duration > 0
    # The exported trace keeps the phases nested under the statement.
    export = json.loads(
        s.execute("SELECT citus_trace_export()").scalar()
    )
    names = [e["name"] for e in export["traceEvents"]]
    assert "2pc.prepare" in names and "2pc.commit_prepared" in names


def test_chrome_export_has_one_lane_per_node(citus):
    s = _setup_items(citus)
    s.execute("SELECT count(*) FROM items")
    export = citus.coordinator_ext.tracer.export_chrome()
    events = export["traceEvents"]
    lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert "coordinator" in lanes
    assert {"worker1", "worker2"} <= lanes
    slices = [e for e in events if e["ph"] == "X"]
    assert slices
    for e in slices:
        assert e["dur"] >= 0 and e["ts"] >= 0
    assert export["displayTimeUnit"] == "ms"


# ------------------------------------------------------- slow-query log


def test_slow_query_log_gated_by_log_min_duration(citus):
    s = _setup_items(citus)
    entries = s.execute("SELECT citus_slow_queries()").scalar()
    assert entries == []  # disabled by default (log_min_duration < 0)
    s.execute("SELECT citus_set_config('log_min_duration', 0)")
    s.execute("SELECT count(*) FROM items")
    entries = s.execute("SELECT citus_slow_queries()").scalar()
    assert any("count" in e[0] for e in entries)
    (entry,) = [e for e in entries if "count" in e[0]]
    assert entry[1] > 0  # duration_ms
    assert entry[2] == "pushdown"
    # Raising the threshold above every simulated latency mutes the log.
    s.execute("SELECT citus_set_config('log_min_duration', 60000)")
    before = len(s.execute("SELECT citus_slow_queries()").scalar())
    s.execute("SELECT count(*) FROM items")
    assert len(s.execute("SELECT citus_slow_queries()").scalar()) == before
