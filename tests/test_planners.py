"""Distributed planner cascade tests: which planner picks up which query
shape, shard pruning, and the unsupported-SQL boundary."""

import pytest

from repro.errors import UnsupportedDistributedQuery
from tests.conftest import explain_text


@pytest.fixture
def s(citus, citus_session):
    s = citus_session
    s.execute("CREATE TABLE orders (key int, id int, total float, tag text,"
              " PRIMARY KEY (key, id))")
    s.execute("SELECT create_distributed_table('orders', 'key')")
    s.execute("CREATE TABLE lines (key int, id int, qty int, PRIMARY KEY (key, id))")
    s.execute("SELECT create_distributed_table('lines', 'key', colocate_with := 'orders')")
    s.execute("CREATE TABLE dims (id int PRIMARY KEY, name text)")
    s.execute("SELECT create_reference_table('dims')")
    s.execute("CREATE TABLE other (okey int PRIMARY KEY, val int)")
    s.execute("SELECT create_distributed_table('other', 'okey', colocate_with := 'none')")
    for k in range(1, 9):
        s.execute("INSERT INTO orders VALUES ($1, 1, $2, 'x')", [k, float(k)])
        s.execute("INSERT INTO lines VALUES ($1, 1, $2)", [k, k * 2])
        s.execute("INSERT INTO other VALUES ($1, $2)", [k, k * 10])
    s.execute("INSERT INTO dims VALUES (1, 'one')")
    return s


class TestFastPath:
    def test_select_by_key(self, s):
        text = explain_text(s, "SELECT * FROM orders WHERE key = 3")
        assert "Fast Path Router" in text and "Task Count: 1" in text

    def test_update_by_key(self, s):
        text = explain_text(s, "UPDATE orders SET total = 0 WHERE key = 3")
        assert "Fast Path Router" in text

    def test_delete_by_key(self, s):
        text = explain_text(s, "DELETE FROM orders WHERE key = 3")
        assert "Fast Path Router" in text

    def test_single_row_insert(self, s):
        text = explain_text(s, "INSERT INTO orders (key, id, total) VALUES (9, 1, 0)")
        assert "Fast Path Router" in text

    def test_fast_path_with_parameter(self, s):
        text = explain_text(s, "SELECT * FROM orders WHERE key = $1", [3])
        assert "Fast Path Router" in text

    def test_extra_filters_still_fast_path(self, s):
        text = explain_text(s, "SELECT * FROM orders WHERE key = 3 AND id > 0")
        assert "Fast Path Router" in text

    def test_rewrites_to_shard_name(self, s):
        text = explain_text(s, "SELECT * FROM orders WHERE key = 3")
        assert "orders_1020" in text  # shard suffix present


class TestRouter:
    def test_colocated_join_single_tenant(self, s):
        text = explain_text(
            s,
            "SELECT o.total, l.qty FROM orders o JOIN lines l"
            " ON o.key = l.key WHERE o.key = 3",
        )
        assert "Planner: Router" in text and "Task Count: 1" in text

    def test_join_with_reference_table_routes(self, s):
        text = explain_text(
            s,
            "SELECT o.total, d.name FROM orders o JOIN dims d ON o.id = d.id"
            " WHERE o.key = 3",
        )
        assert "Planner: Router" in text

    def test_aggregate_within_tenant_routes(self, s):
        text = explain_text(
            s, "SELECT count(*), sum(total) FROM orders WHERE key = 3 GROUP BY tag"
        )
        assert "Router" in text

    def test_transitive_filter_inference(self, s):
        # Filter on l.key propagates to o.key through the join equality.
        text = explain_text(
            s,
            "SELECT * FROM orders o JOIN lines l ON o.key = l.key WHERE l.key = 5",
        )
        assert "Task Count: 1" in text

    def test_different_keys_cannot_route(self, s):
        rows = s.execute(
            "SELECT count(*) FROM orders o JOIN lines l ON o.key = l.key"
            " WHERE o.key = 3 AND l.key = 4"
        ).rows
        # Contradictory filters: not routable to one shard, but pushdown
        # still answers it (empty).
        assert rows == [[0]]


class TestPushdown:
    def test_multi_shard_scan(self, s):
        text = explain_text(s, "SELECT * FROM orders")
        assert "Pushdown" in text and "Task Count: 8" in text

    def test_group_by_dist_column_is_concat(self, s):
        text = explain_text(s, "SELECT key, sum(total) FROM orders GROUP BY key")
        assert "Planner: Pushdown" in text
        assert "Merge Query" not in text

    def test_group_by_other_column_is_two_phase(self, s):
        text = explain_text(s, "SELECT tag, sum(total) FROM orders GROUP BY tag")
        assert "partial aggregation" in text
        assert "Merge Query" in text

    def test_avg_split_into_partials(self, s):
        text = explain_text(s, "SELECT avg(total) FROM orders")
        assert "avg_partial" in text and "avg_merge" in text

    def test_colocated_join_pushdown(self, s):
        text = explain_text(
            s,
            "SELECT o.key, sum(l.qty) FROM orders o JOIN lines l ON o.key = l.key"
            " GROUP BY o.key",
        )
        assert "Pushdown" in text and "Task Count: 8" in text

    def test_shard_pruning_with_in_list(self, s, citus):
        from repro.engine.datum import hash_value

        dist = citus.coordinator_ext.metadata.cache.get_table("orders")
        keys = [1, 2]
        expected = {dist.shard_index_for_hash(hash_value(k)) for k in keys}
        text = explain_text(s, "SELECT * FROM orders WHERE key IN (1, 2)")
        assert f"Task Count: {len(expected)}" in text

    def test_pruning_contradictory_equality(self, s):
        text = explain_text(s, "SELECT * FROM orders WHERE key = 1 AND key = 9999")
        # Intersection of two single-shard prunes; at most 1 task.
        assert "Task Count: 0" in text or "Task Count: 1" in text

    def test_limit_pushdown_with_order(self, s):
        rows = s.execute(
            "SELECT key, total FROM orders ORDER BY total DESC LIMIT 3"
        ).rows
        assert [r[0] for r in rows] == [8, 7, 6]

    def test_star_with_expression_order_by(self, s):
        # Hidden sort columns appended on the workers must not clip the
        # star-expanded output (regression).
        rows = s.execute(
            "SELECT * FROM orders ORDER BY total + 0 DESC LIMIT 2"
        ).rows
        assert len(rows[0]) == 4  # key, id, total, tag all present
        assert rows[0][2] >= rows[1][2]

    def test_offset_applied_on_coordinator(self, s):
        rows = s.execute(
            "SELECT key FROM orders ORDER BY key LIMIT 3 OFFSET 2"
        ).rows
        assert [r[0] for r in rows] == [3, 4, 5]

    def test_count_distinct_non_dist_column(self, s):
        assert s.execute("SELECT count(DISTINCT tag) FROM orders").scalar() == 1

    def test_having_after_merge(self, s):
        rows = s.execute(
            "SELECT tag, count(*) FROM orders GROUP BY tag HAVING count(*) > 7"
        ).rows
        assert rows == [["x", 8]]

    def test_parallel_dml(self, s):
        text = explain_text(s, "UPDATE orders SET total = total + 1")
        assert "Pushdown (DML)" in text and "Task Count: 8" in text
        r = s.execute("UPDATE orders SET total = total + 1")
        assert r.rowcount == 8


class TestJoinOrderPlanner:
    def test_non_colocated_join_uses_join_order_planner(self, s, citus):
        text = explain_text(
            s,
            "SELECT count(*) FROM orders o JOIN other x ON o.id = x.okey",
        )
        assert "Join Order" in text

    def test_broadcast_result_correct(self, s):
        count = s.execute(
            "SELECT count(*) FROM orders o JOIN other x ON o.id = x.okey"
        ).scalar()
        assert count == 8  # id=1 joins okey=1 across 8 order rows

    def test_repartition_on_dist_key_of_anchor(self, s, citus):
        # other.okey is its dist col; join on o.id = x.okey makes `other`
        # the anchor and orders the moved side (or broadcast if cheaper).
        rows = s.execute(
            "SELECT x.okey, count(*) FROM orders o JOIN other x ON o.key = x.okey"
            " GROUP BY x.okey ORDER BY x.okey"
        ).rows
        assert len(rows) == 8

    def test_stats_track_repartition_queries(self, s, citus):
        before = citus.coordinator_ext.stats.get("repartition_queries", 0)
        s.execute("SELECT count(*) FROM orders o JOIN other x ON o.id = x.okey")
        assert citus.coordinator_ext.stats["repartition_queries"] == before + 1

    def test_disabled_repartition_raises(self, s, citus):
        citus.coordinator_ext.config.enable_repartition_joins = False
        try:
            with pytest.raises(UnsupportedDistributedQuery):
                s.execute(
                    "SELECT count(*) FROM orders o JOIN other x ON o.id = x.okey"
                )
        finally:
            citus.coordinator_ext.config.enable_repartition_joins = True

    def test_intermediate_tables_cleaned_up(self, s, citus):
        s.execute("SELECT count(*) FROM orders o JOIN other x ON o.id = x.okey")
        for name in citus.cluster.node_names():
            instance = citus.cluster.node(name)
            leftovers = [t for t in instance.catalog.tables
                         if t.startswith("citus_repart") or t.startswith("citus_bcast")]
            assert leftovers == []
        assert not any(
            t.startswith("citus_repart") or t.startswith("citus_bcast")
            for t in citus.coordinator_ext.metadata.cache.tables
        )


class TestUnsupported:
    def test_local_distributed_join_rejected(self, s):
        s.execute("CREATE TABLE plain_local (id int PRIMARY KEY)")
        with pytest.raises(UnsupportedDistributedQuery):
            s.execute("SELECT * FROM orders o JOIN plain_local p ON o.id = p.id")

    def test_three_way_non_colocated_rejected(self, s):
        s.execute("CREATE TABLE third (tkey int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('third', 'tkey', colocate_with := 'none')")
        with pytest.raises(UnsupportedDistributedQuery):
            s.execute(
                "SELECT count(*) FROM orders o, other x, third t"
                " WHERE o.id = x.okey AND x.val = t.tkey"
            )

    def test_multi_shard_select_for_update_rejected(self, s):
        with pytest.raises(UnsupportedDistributedQuery):
            s.execute("SELECT * FROM orders FOR UPDATE")

    def test_inner_cross_shard_aggregate_rejected(self, s):
        with pytest.raises(UnsupportedDistributedQuery):
            s.execute(
                "SELECT avg(c) FROM (SELECT tag, count(*) AS c FROM orders"
                " GROUP BY tag) AS sub"
            )

    def test_inner_aggregate_on_dist_column_allowed(self, s):
        # VeniceDB pattern: inner GROUP BY includes the distribution column.
        value = s.execute(
            "SELECT avg(c) FROM (SELECT key, count(*) AS c FROM orders"
            " GROUP BY key) AS sub"
        ).scalar()
        assert value == 1.0


class TestPlannerCascadeOrdering:
    def test_stats_count_each_planner(self, s, citus):
        stats = citus.coordinator_ext.stats
        base_fast = stats.get("fast_path_queries", 0)
        base_push = stats.get("pushdown_queries", 0)
        s.execute("SELECT * FROM orders WHERE key = 1")
        s.execute("SELECT count(*) FROM orders")
        assert stats["fast_path_queries"] == base_fast + 1
        assert stats["pushdown_queries"] == base_push + 1

    def test_reference_only_query_local(self, s, citus):
        text = explain_text(s, "SELECT * FROM dims")
        assert "Local (reference replica)" in text
