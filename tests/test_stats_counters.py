"""Cluster-wide stats counters: planner tiers, task execution, connection
slow-start/reuse, 2PC, deadlock detection, rebalancing — plus the
exception-safety guarantees of the gauge primitives.

Tests scope their measurements with ``StatsRegistry.measure()`` so the
assertions are deltas, immune to counters bumped by fixtures or the
maintenance daemon.
"""

import pytest

from repro.engine.stats import StatsRegistry, stats_for
from repro.errors import DataError, QueryCanceled
from tests.conftest import find_keys_on_distinct_nodes


@pytest.fixture
def s(citus, citus_session):
    s = citus_session
    s.execute("CREATE TABLE t (k int PRIMARY KEY, v int)")
    s.execute("SELECT create_distributed_table('t', 'k')")
    for k in range(1, 9):
        s.execute(f"INSERT INTO t VALUES ({k}, {k})")
    return s


@pytest.fixture
def reg(citus):
    return citus.coordinator_ext.stat_counters


def node_of(citus, table, key):
    from repro.engine.datum import hash_value

    ext = citus.coordinator_ext
    dist = ext.metadata.cache.get_table(table)
    index = dist.shard_index_for_hash(hash_value(key))
    return ext.metadata.cache.placement_node(dist.shards[index].shardid)


class TestRegistryPrimitives:
    """The engine-level registry, independent of Citus."""

    def test_counters_and_labels(self):
        r = StatsRegistry()
        r.incr("hits")
        r.incr("hits", 2, node="w1")
        assert r.value("hits") == 3
        assert r.value("hits", node="w1") == 2
        assert r.per_node("hits") == {"": 1, "w1": 2}

    def test_measure_yields_delta_not_absolute(self):
        r = StatsRegistry()
        r.incr("hits", 10)
        with r.measure() as m:
            r.incr("hits", 5)
        assert m.value("hits") == 5
        assert r.value("hits") == 15

    def test_track_is_exception_safe(self):
        r = StatsRegistry()
        with pytest.raises(RuntimeError):
            with r.track("in_flight"):
                assert r.gauge("in_flight") == 1
                raise RuntimeError("task died")
        assert r.gauge("in_flight") == 0

    def test_snapshot_diff_drops_zero_entries(self):
        r = StatsRegistry()
        r.incr("stable")
        before = r.snapshot()
        r.incr("moved")
        delta = r.snapshot().diff(before)
        assert delta.value("moved") == 1
        assert "stable" not in delta.counters

    def test_stats_for_shares_one_registry_per_holder(self):
        class Holder:
            pass

        h = Holder()
        assert stats_for(h) is stats_for(h)

    def test_cluster_extensions_share_the_registry(self, citus):
        registries = {
            id(citus.cluster.node(n).extensions["citus"].stat_counters)
            for n in citus.cluster.node_names()
        }
        assert len(registries) == 1


class TestPlannerTierCounters:
    def test_each_tier_bumps_its_counter(self, citus, s, reg):
        s.execute("CREATE TABLE other (oid int, k int)")
        s.execute("SELECT create_distributed_table('other', 'oid')")
        queries = {
            "planner_fast_path": "SELECT * FROM t WHERE k = 3",
            "planner_pushdown": "SELECT count(*) FROM t",
            "planner_join_order": "SELECT count(*) FROM t JOIN other ON t.k = other.k",
        }
        for counter, sql in queries.items():
            with reg.measure() as m:
                s.execute(sql)
            assert m.value(counter) == 1, counter
            # Moving the intermediate result of a join-order plan plans
            # extra internal statements, so >= rather than ==.
            assert m.value("planner_total") >= 1, counter

    def test_cascade_misses_are_counted(self, s, reg):
        # A full scan misses fast-path AND router before pushdown fires.
        with reg.measure() as m:
            s.execute("SELECT count(*) FROM t")
        assert m.value("planner_fast_path_misses") == 1
        assert m.value("planner_router_misses") == 1

    def test_fast_path_pays_no_miss(self, s, reg):
        with reg.measure() as m:
            s.execute("SELECT * FROM t WHERE k = 3")
        assert m.value("planner_fast_path_misses") == 0


class TestTaskAndConnectionCounters:
    def test_task_fan_out_counted_per_node(self, s, reg):
        with reg.measure() as m:
            s.execute("SELECT count(*) FROM t")
        assert m.value("tasks_executed") == 8
        assert m.value("tasks_executed", node="worker1") == 4
        assert m.value("tasks_executed", node="worker2") == 4

    def test_connections_respect_shared_pool_cap(self, citus, s, reg):
        s.execute("SELECT citus_set_config('max_shared_pool_size', '2')")
        fresh = citus.coordinator_session("fresh")
        with reg.measure() as m:
            fresh.execute("SELECT count(*) FROM t")
        for node in ("worker1", "worker2"):
            opened = m.value("connections_opened", node=node)
            assert 1 <= opened <= 2, f"{node} opened {opened}"

    def test_cached_connections_are_reused_not_reopened(self, s, reg):
        s.execute("SELECT count(*) FROM t")  # warm the per-session pools
        with reg.measure() as m:
            s.execute("SELECT count(*) FROM t")
        assert m.value("connections_opened") == 0
        assert m.value("connections_reused") >= 2  # one per worker at least

    def test_in_flight_gauges_settle_to_zero(self, s, reg):
        s.execute("SELECT count(*) FROM t")
        assert reg.gauge("tasks_in_flight") == 0
        assert reg.gauge("executor_statements_in_flight") == 0

    def test_shared_slots_match_live_connections(self, citus, s, reg):
        s.execute("SELECT count(*) FROM t")
        ext = citus.coordinator_ext
        for node in ("worker1", "worker2"):
            assert ext._shared_slots[node] == reg.gauge("connections_active", node=node)


class TestTwoPhaseCommitCounters:
    def test_2pc_records_one_prepare_and_commit_per_node(self, citus, s, reg):
        k1, k2 = find_keys_on_distinct_nodes(citus, "t")
        n1, n2 = node_of(citus, "t", k1), node_of(citus, "t", k2)
        with reg.measure() as m:
            s.execute("BEGIN")
            s.execute("UPDATE t SET v = 100 WHERE k = $1", [k1])
            s.execute("UPDATE t SET v = 100 WHERE k = $1", [k2])
            s.execute("COMMIT")
        assert m.value("twopc_transactions") == 1
        assert m.per_node("twopc_prepares") == {n1: 1, n2: 1}
        assert m.per_node("twopc_commit_prepared") == {n1: 1, n2: 1}
        assert m.value("twopc_prepare_failures") == 0

    def test_single_node_transaction_delegates_without_2pc(self, citus, s, reg):
        k1, _ = find_keys_on_distinct_nodes(citus, "t")
        with reg.measure() as m:
            s.execute("BEGIN")
            s.execute("UPDATE t SET v = 1 WHERE k = $1", [k1])
            s.execute("COMMIT")
        assert m.value("onepc_commits") == 1
        assert m.value("twopc_transactions") == 0
        assert m.value("twopc_prepares") == 0

    def test_autocommit_multi_shard_write_uses_2pc(self, s, reg):
        with reg.measure() as m:
            s.execute("UPDATE t SET v = v + 1")
        assert m.value("twopc_transactions") == 1
        assert m.value("twopc_prepares") == 2  # one per worker


class TestDeadlockCounters:
    def test_forced_deadlock_records_exactly_one_victim(self, citus, s, reg):
        k1, k2 = find_keys_on_distinct_nodes(citus, "t")
        a = citus.coordinator_session("a")
        b = citus.coordinator_session("b")
        a.execute("BEGIN")
        a.execute("UPDATE t SET v = 1 WHERE k = $1", [k1])
        b.execute("BEGIN")
        b.execute("UPDATE t SET v = 2 WHERE k = $1", [k2])
        fa = a.execute_async(f"UPDATE t SET v = 1 WHERE k = {k2}")
        fb = b.execute_async(f"UPDATE t SET v = 2 WHERE k = {k1}")
        with reg.measure() as m:
            cancelled = citus.run_maintenance()["deadlocks_cancelled"]
        assert len(cancelled) == 1
        assert m.value("deadlock_checks") >= 1
        assert m.value("deadlock_victims") == 1
        citus.pump()
        assert fb.done and isinstance(fb.error, QueryCanceled)
        b.execute("ROLLBACK")
        citus.pump()
        assert fa.done and fa.error is None
        a.execute("COMMIT")

    def test_idle_check_finds_no_victims(self, citus, s, reg):
        with reg.measure() as m:
            citus.run_maintenance()
        assert m.value("deadlock_checks") >= 1
        assert m.value("deadlock_victims") == 0


class TestRebalancerCounters:
    def test_shard_move_counts_moves_and_rows(self, citus, s, reg):
        k1, _ = find_keys_on_distinct_nodes(citus, "t")
        source = node_of(citus, "t", k1)
        target = next(n for n in citus.worker_names() if n != source)
        from repro.engine.datum import hash_value

        dist = citus.coordinator_ext.metadata.cache.get_table("t")
        shardid = dist.shards[dist.shard_index_for_hash(hash_value(k1))].shardid
        with reg.measure() as m:
            s.execute(
                "SELECT citus_move_shard_placement($1, $2)", [shardid, target]
            )
        assert m.value("rebalancer_shard_moves") >= 1
        assert m.value("rebalancer_shard_moves", node=target) >= 1
        assert m.value("rebalancer_rows_copied") >= 1  # k1's row moved
        assert node_of(citus, "t", k1) == target


class TestExceptionSafety:
    """Satellite: a failing task must not leave gauges stuck or slots
    leaked — the latent bug class this PR fixes."""

    def test_failing_task_decrements_in_flight_gauge(self, s, reg):
        with reg.measure() as m:
            with pytest.raises(DataError):
                s.execute("SELECT v / 0 FROM t")
        assert m.value("tasks_failed") >= 1
        assert reg.gauge("tasks_in_flight") == 0
        assert reg.gauge("executor_statements_in_flight") == 0

    def test_failed_statement_counts_no_phantom_tasks(self, s, reg):
        with reg.measure() as m:
            with pytest.raises(DataError):
                s.execute("SELECT v / 0 FROM t")
        # The task that failed is not also counted as executed.
        assert m.value("tasks_failed") + m.value("tasks_executed") <= 8

    def test_node_crash_releases_shared_pool_slots(self, citus, s, reg):
        """Regression: zombie connections dropped after a node failure used
        to keep their shared-pool slots forever, shrinking the effective
        max_shared_pool_size with every failover."""
        from repro.net.cluster import StandbyConfig

        ext = citus.coordinator_ext
        s.execute("SELECT count(*) FROM t")  # open pooled connections
        node = citus.worker_names()[0]
        citus.cluster.enable_standby(node, StandbyConfig(mode="synchronous"))
        citus.cluster.fail_node(node)
        citus.cluster.promote_standby(node)
        ext._utility_connections.clear()
        with reg.measure() as m:
            fresh = citus.coordinator_session("fresh")
            assert fresh.execute("SELECT count(*) FROM t").scalar() == 8
            s.execute("SELECT count(*) FROM t")  # zombie drop happens here
        assert m.value("connections_dropped", node=node) >= 1
        # Slots held equal live pooled connections — nothing leaked.
        assert ext._shared_slots[node] == reg.gauge("connections_active", node=node)


class TestStatCounterUDFs:
    def test_counters_view_rows(self, s):
        s.execute("SELECT count(*) FROM t")
        rows = s.execute("SELECT citus_stat_counters()").scalar()
        names = {r[0] for r in rows}
        assert "planner_total" in names
        assert "tasks_executed" in names
        by_key = {(r[0], r[1]): r[2] for r in rows}
        assert by_key[("tasks_executed", "worker1")] >= 4

    def test_reset_zeroes_everything(self, s, reg):
        s.execute("SELECT count(*) FROM t")
        assert reg.value("planner_total") > 0
        assert s.execute("SELECT citus_stat_counters_reset()").scalar() is True
        assert reg.value("planner_total") == 0
        # Counters and high-water peaks are cleared; live up/down gauges
        # (currently-held resources like open connections or pool slots)
        # survive a reset — zeroing a held level would go negative on
        # release.
        remaining = s.execute("SELECT citus_stat_counters()").scalar()
        names = {row[0] for row in remaining}
        assert "planner_total" not in names
        assert "rows_buffered_peak" not in names
        assert names <= {
            "connections_active", "shared_pool_slots", "pool_clients",
            "pool_leases", "tasks_in_flight", "executor_statements_in_flight",
        }
