"""Expression evaluation and function library tests, including the
distributed aggregate partial/merge protocol property tests."""

import datetime as dt

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.expr import EvalContext, Row, apply_binary, evaluate, like_match
from repro.engine.functions import (
    AGGREGATES,
    PARTIAL_REWRITES,
    SCALAR_FUNCTIONS,
    get_aggregate,
)
from repro.errors import DataError
from repro.sql import parse_expression


def ev(text, **bindings):
    row = Row()
    for name, value in bindings.items():
        row.bind(None, name, value)
    return evaluate(parse_expression(text), EvalContext(row=row))


class TestThreeValuedLogic:
    def test_and_or_kleene(self):
        assert ev("NULL AND false") is False
        assert ev("NULL AND true") is None
        assert ev("NULL OR true") is True
        assert ev("NULL OR false") is None

    def test_not_null(self):
        assert ev("NOT NULL") is None

    def test_comparison_with_null(self):
        assert ev("1 = NULL") is None
        assert ev("NULL <> NULL") is None

    def test_arithmetic_null_propagation(self):
        assert ev("1 + NULL") is None

    def test_coalesce(self):
        assert ev("coalesce(NULL, NULL, 3)") == 3

    def test_nullif(self):
        assert ev("nullif(5, 5)") is None
        assert ev("nullif(5, 6)") == 5

    def test_in_list_with_null_semantics(self):
        assert ev("1 IN (1, NULL)") is True
        assert ev("2 IN (1, NULL)") is None
        assert ev("2 NOT IN (1, NULL)") is None


class TestOperators:
    def test_integer_division_truncates_like_postgres(self):
        assert ev("7 / 2") == 3
        assert ev("-7 / 2") == -3  # truncation toward zero, not floor
        assert ev("6 / 2") == 3
        assert ev("7.0 / 2") == 3.5

    def test_division_by_zero(self):
        with pytest.raises(DataError):
            ev("1 / 0")

    def test_modulo(self):
        assert ev("7 % 3") == 1

    def test_string_concat(self):
        assert ev("'a' || 'b' || 1") == "ab1"

    def test_array_concat(self):
        assert ev("ARRAY[1] || ARRAY[2, 3]") == [1, 2, 3]

    def test_jsonb_merge(self):
        assert ev("""'{"a": 1}'::jsonb || '{"b": 2}'::jsonb""") == {"a": 1, "b": 2}

    def test_date_arithmetic(self):
        assert ev("date '2020-01-01' + 30") == dt.date(2020, 1, 31)
        assert ev("date '2020-02-01' - date '2020-01-01'") == dt.timedelta(days=31)

    def test_timestamp_plus_interval(self):
        value = ev("timestamp '2020-01-01T00:00:00' + interval '90 minutes'")
        assert value == dt.datetime(2020, 1, 1, 1, 30)

    def test_regex_match(self):
        assert ev("'postgres' ~ 'gre'") is True
        assert ev("'POSTGRES' ~* 'gre'") is True
        assert ev("'abc' !~ 'z'") is True

    def test_between_symmetric_behavior(self):
        assert ev("5 BETWEEN 1 AND 10") is True
        assert ev("5 NOT BETWEEN 1 AND 10") is False


class TestLikeMatching:
    @pytest.mark.parametrize(
        "text, pattern, ci, expected",
        [
            ("hello", "h%", False, True),
            ("hello", "%llo", False, True),
            ("hello", "h_llo", False, True),
            ("hello", "H%", False, False),
            ("Hello", "h%", True, True),
            ("abc", "%b%", False, True),
            ('["fix postgres"]', "%postgres%", True, True),
            ("100%", "100%", False, True),
        ],
    )
    def test_patterns(self, text, pattern, ci, expected):
        assert like_match(text, pattern, ci) is expected

    @given(st.text(alphabet="abc%_", max_size=10))
    def test_property_full_wildcard_matches_everything(self, text):
        assert like_match(text, "%", False)


class TestScalarFunctions:
    def test_math(self):
        assert ev("abs(-5)") == 5
        assert ev("round(2.567, 2)") == 2.57
        assert ev("floor(2.9)") == 2.0
        assert ev("power(2, 10)") == 1024.0
        assert ev("greatest(1, 9, 4)") == 9
        assert ev("least(1, NULL, 4)") == 1

    def test_strings(self):
        assert ev("lower('ABC')") == "abc"
        assert ev("length('hello')") == 5
        assert ev("substring('hello', 2, 3)") == "ell"
        assert ev("split_part('a-b-c', '-', 2)") == "b"
        assert ev("replace('aaa', 'a', 'b')") == "bbb"
        assert ev("md5('x')") == "9dd4e461268c8034f5c8564e155c67a6"
        assert ev("left('hello', 2)") == "he"
        assert ev("strpos('hello', 'll')") == 3

    def test_dates(self):
        assert ev("date_trunc('month', timestamp '2020-05-17T10:00:00')") == \
            dt.datetime(2020, 5, 1)
        assert ev("extract(year FROM date '1998-03-01')") == 1998.0
        assert ev("date_part('dow', date '2021-06-20')") == 0.0  # Sunday

    def test_jsonb_functions(self):
        assert ev("""jsonb_array_length('[1,2,3]'::jsonb)""") == 3
        assert ev("jsonb_build_object('a', 1, 'b', 2)") == {"a": 1, "b": 2}
        assert ev("""jsonb_typeof('{"x":1}'::jsonb)""") == "object"

    def test_width_bucket(self):
        assert ev("width_bucket(35, 0, 100, 10)") == 4

    def test_hashtext_matches_datum(self):
        from repro.engine.datum import hash_value

        assert ev("hashtext('k')") == hash_value("k")


class TestAggregateProtocol:
    """The distributed two-phase aggregation invariant: splitting any input
    among workers, computing partials, and merging them must equal the
    direct aggregate."""

    def direct(self, name, values):
        agg = get_aggregate(name)
        state = agg.init()
        for v in values:
            state = agg.accumulate(state, v)
        return agg.finalize(state)

    def two_phase(self, name, chunks):
        agg = get_aggregate(name)
        partials = []
        for chunk in chunks:
            state = agg.init()
            for v in chunk:
                state = agg.accumulate(state, v)
            partials.append(agg.partial(state))
        merged = agg.init()
        for p in partials:
            merged = agg.merge(merged, p)
        return agg.finalize(merged)

    @pytest.mark.parametrize("name", ["count", "sum", "avg", "min", "max", "stddev"])
    @given(data=st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                   min_value=-1e6, max_value=1e6) | st.none(),
                         min_size=0, max_size=40),
           split=st.integers(min_value=1, max_value=5))
    def test_property_partial_merge_equals_direct(self, name, data, split):
        chunks = [data[i::split] for i in range(split)]
        direct = self.direct(name, data)
        merged = self.two_phase(name, chunks)
        if isinstance(direct, float) and isinstance(merged, float):
            assert merged == pytest.approx(direct, rel=1e-6, abs=1e-9)
        else:
            assert merged == direct

    def test_every_partial_rewrite_names_exist(self):
        for coord_name, (worker, merge) in PARTIAL_REWRITES.items():
            assert coord_name in AGGREGATES
            assert worker in AGGREGATES
            assert merge in AGGREGATES

    def test_approx_count_distinct_accuracy(self):
        agg = get_aggregate("approx_count_distinct")
        state = agg.init()
        for i in range(5000):
            state = agg.accumulate(state, f"value-{i % 1000}")
        estimate = agg.finalize(state)
        assert 900 <= estimate <= 1100  # ~2% typical HLL error at 2^10 regs

    def test_approx_merge_is_union(self):
        agg = get_aggregate("approx_count_distinct")
        s1, s2 = agg.init(), agg.init()
        for i in range(500):
            s1 = agg.accumulate(s1, i)
        for i in range(250, 750):
            s2 = agg.accumulate(s2, i)
        merged = agg.merge(agg.init(), agg.partial(s1))
        merged = agg.merge(merged, agg.partial(s2))
        estimate = agg.finalize(merged)
        assert 650 <= estimate <= 850  # true union is 750


class TestGenerateSeries:
    def test_ints(self):
        fn = SCALAR_FUNCTIONS  # noqa: F841 (scalar registry untouched)
        from repro.engine.functions import SET_RETURNING_FUNCTIONS

        gs = SET_RETURNING_FUNCTIONS["generate_series"]
        assert gs(1, 5) == [1, 2, 3, 4, 5]
        assert gs(5, 1, -2) == [5, 3, 1]

    def test_zero_step_raises(self):
        from repro.engine.functions import SET_RETURNING_FUNCTIONS

        with pytest.raises(DataError):
            SET_RETURNING_FUNCTIONS["generate_series"](1, 5, 0)


class TestRowScoping:
    def test_ambiguous_column_raises(self):
        from repro.engine.expr import AmbiguousColumn

        row = Row()
        row.bind("a", "x", 1)
        row.bind("b", "x", 2)
        with pytest.raises(AmbiguousColumn):
            row.lookup(None, "x")

    def test_qualified_lookup_still_works(self):
        row = Row()
        row.bind("a", "x", 1)
        row.bind("b", "x", 2)
        assert row.lookup("a", "x") == 1
        assert row.lookup("b", "x") == 2

    def test_outer_context_fallback(self):
        outer_row = Row()
        outer_row.bind("t", "k", 42)
        outer = EvalContext(row=outer_row)
        inner = EvalContext(row=Row(), outer=outer)
        assert inner.lookup_column("t", "k") == 42
