"""Live cluster introspection: wait events, citus_dist_stat_activity,
citus_lock_waits, get_rebalance_progress, citus_stat_tenants, and the
Prometheus metrics snapshot."""

from __future__ import annotations

import pytest

from repro import PostgresInstance
from repro.citus.api import make_cluster
from repro.citus.introspection import GPID_STRIDE, global_pid
from repro.citus.rebalancer import MOVE_PHASES, progress_for
from repro.engine.stats import stats_for
from repro.engine.waitevents import IN_PROGRESS_GAUGE, wait_totals
from repro.errors import NodeUnavailable, TooManyConnections
from repro.net.pool import ConnectionPool

from .conftest import find_keys_on_distinct_nodes


def _make_table(citus, rows: int = 20):
    session = citus.coordinator_session()
    session.execute("CREATE TABLE accounts (k int, v int)")
    session.execute("SELECT create_distributed_table('accounts', 'k')")
    for i in range(rows):
        session.execute(f"INSERT INTO accounts (k, v) VALUES ({i}, {i})")
    return session


def _udf_rows(session, call: str):
    return session.execute(f"SELECT {call}").rows[0][0]


# ------------------------------------------------------------- wait events


def test_wait_event_totals_accumulate(citus):
    session = _make_table(citus)
    totals = wait_totals(stats_for(citus.cluster))
    classes = {wclass for wclass, _event, _node in totals}
    # Remote execution, connection setup, and WAL flushes all happened.
    assert "Net" in classes
    assert "IO" in classes
    for entry in totals.values():
        assert entry["count"] > 0
        assert entry["seconds"] >= 0.0


def test_wait_events_survive_lease_failure():
    """A forced failure mid-lease must not leave a dangling in-progress
    wait event: the gauge returns to zero and the stack is empty."""
    instance = PostgresInstance("pg_pool")
    pool = ConnectionPool(instance, pool_size=0)
    with pytest.raises(TooManyConnections):
        pool._acquire()
    registry = instance.wait_registry
    assert registry.snapshot().gauge(IN_PROGRESS_GAUGE) == 0
    assert pool.wait_events.depth == 0
    totals = wait_totals(registry)
    assert totals[("Client", "PoolLease", "pg_pool")]["count"] == 1


def test_wait_event_gauge_balanced_after_workload(citus):
    _make_table(citus)
    snap = stats_for(citus.cluster).snapshot()
    assert snap.gauge(IN_PROGRESS_GAUGE) == 0


def test_twopc_wait_events_recorded(citus):
    session = _make_table(citus)
    k1, k2 = find_keys_on_distinct_nodes(citus, "accounts")
    session.execute("BEGIN")
    session.execute(f"UPDATE accounts SET v = 1 WHERE k = {k1}")
    session.execute(f"UPDATE accounts SET v = 1 WHERE k = {k2}")
    session.execute("COMMIT")
    totals = wait_totals(stats_for(citus.cluster))
    events = {event for wclass, event, _node in totals if wclass == "TwoPC"}
    assert "Prepare" in events
    assert "CommitPrepared" in events


def test_introspection_can_be_disabled(citus):
    session = citus.coordinator_session()
    session.execute("SELECT citus_set_config('enable_introspection', $1)",
                    [False])
    assert citus.coordinator.wait_registry is None
    assert citus.coordinator.tenant_stats is None
    # Drop the totals accumulated while the cluster was built.
    session.execute("SELECT citus_stat_counters_reset()")
    session.execute("CREATE TABLE t0 (k int, v int)")
    session.execute("SELECT create_distributed_table('t0', 'k')")
    session.execute("INSERT INTO t0 (k, v) VALUES (1, 1)")
    assert not wait_totals(stats_for(citus.cluster))
    session.execute("SELECT citus_set_config('enable_introspection', $1)",
                    [True])
    session.execute("INSERT INTO t0 (k, v) VALUES (2, 2)")
    assert wait_totals(stats_for(citus.cluster))


# ---------------------------------------------------------------- activity


def test_dist_stat_activity_lists_all_nodes(citus):
    session = _make_table(citus)
    rows = _udf_rows(session, "citus_dist_stat_activity()")
    by_node = {}
    for row in rows:
        by_node.setdefault(row[1], []).append(row)
    assert set(by_node) >= {"coordinator", "worker1", "worker2"}
    # The session running the view reports itself as active on the UDF.
    me = [r for r in rows if r[0] == global_pid(citus.coordinator_ext,
                                               "coordinator",
                                               session.backend_pid)]
    assert len(me) == 1
    assert me[0][5] == "active"
    assert "citus_dist_stat_activity" in me[0][9]


def test_global_pids_are_unique_and_node_scoped(citus):
    session = _make_table(citus)
    rows = _udf_rows(session, "citus_dist_stat_activity()")
    gpids = [row[0] for row in rows]
    assert len(gpids) == len(set(gpids))
    for row in rows:
        node, pid = row[1], row[2]
        group = 0 if node == "coordinator" else int(node[len("worker"):])
        assert row[0] == group * GPID_STRIDE + pid


def test_activity_shows_wait_event_for_blocked_writer(citus):
    a = _make_table(citus)
    b = citus.coordinator_session()
    a.execute("BEGIN")
    a.execute("UPDATE accounts SET v = 100 WHERE k = 3")
    fut = b.execute_async("UPDATE accounts SET v = 200 WHERE k = 3")
    citus.pump()
    rows = _udf_rows(a, "citus_dist_stat_activity()")
    blocked = [r for r in rows if r[2] == b.backend_pid
               and r[1] == "coordinator"]
    assert len(blocked) == 1
    assert blocked[0][5] == "active"
    assert (blocked[0][6], blocked[0][7]) == ("IPC", "RemoteStatement")
    # The worker backend doing the actual lock wait shows Lock:tuple.
    worker_waits = [(r[6], r[7]) for r in rows if r[1] != "coordinator"]
    assert ("Lock", "tuple") in worker_waits
    a.execute("COMMIT")
    citus.pump()
    assert fut.get().rowcount == 1


# -------------------------------------------------------------- lock waits


def test_lock_waits_blocked_writer_has_correct_blocking_gpid(citus):
    a = _make_table(citus)
    b = citus.coordinator_session()
    a.execute("BEGIN")
    a.execute("UPDATE accounts SET v = 100 WHERE k = 3")
    fut = b.execute_async("UPDATE accounts SET v = 200 WHERE k = 3")
    citus.pump()
    rows = _udf_rows(a, "citus_lock_waits()")
    assert len(rows) == 1
    (waiting_gpid, blocking_gpid, blocked_sql, blocking_sql,
     waiting_node, blocking_node, lock) = rows[0]
    ext = citus.coordinator_ext
    assert waiting_gpid == global_pid(ext, "coordinator", b.backend_pid)
    assert blocking_gpid == global_pid(ext, "coordinator", a.backend_pid)
    assert blocked_sql == "UPDATE accounts SET v = 200 WHERE k = 3"
    assert waiting_node == "coordinator"
    assert blocking_node == "coordinator"
    assert lock[0] == "row"
    a.execute("ROLLBACK")
    citus.pump()
    assert fut.get().rowcount == 1
    assert _udf_rows(a, "citus_lock_waits()") == []


def test_lock_waits_resolves_distributed_transactions(citus):
    """Two multi-statement transactions colliding on the same key: both
    sides carry distributed transaction ids and still resolve back to
    their coordinator sessions."""
    a = _make_table(citus)
    b = citus.coordinator_session()
    k1, k2 = find_keys_on_distinct_nodes(citus, "accounts")
    a.execute("BEGIN")
    a.execute(f"UPDATE accounts SET v = 1 WHERE k = {k1}")
    a.execute(f"UPDATE accounts SET v = 1 WHERE k = {k2}")
    b.execute("BEGIN")
    fut = b.execute_async(f"UPDATE accounts SET v = 2 WHERE k = {k1}")
    citus.pump()
    citus.run_maintenance()  # assigns distributed txn ids to waiters
    rows = _udf_rows(a, "citus_lock_waits()")
    ext = citus.coordinator_ext
    pairs = {(r[0], r[1]) for r in rows}
    assert (global_pid(ext, "coordinator", b.backend_pid),
            global_pid(ext, "coordinator", a.backend_pid)) in pairs
    a.execute("COMMIT")
    citus.pump()
    assert fut.done
    b.execute("COMMIT")


# ------------------------------------------------------ rebalance progress


def test_rebalance_progress_phases_advance_monotonically(citus):
    session = _make_table(citus, rows=50)
    rows = _udf_rows(session, "citus_shards()")
    table, shardid, _name, node, _size = rows[0]
    target = "worker2" if node == "worker1" else "worker1"
    session.execute(
        f"SELECT citus_move_shard_placement({shardid}, '{target}')"
    )
    progress = progress_for(citus.coordinator_ext)
    assert progress.moves
    for move in progress.moves:
        phases = [phase for phase, _at in move.phase_history]
        # Every phase entered in taxonomy order, no repeats, no skips
        # before the point reached.
        assert phases == list(MOVE_PHASES[:len(phases)])
        times = [at for _phase, at in move.phase_history]
        assert times == sorted(times)
        assert move.status == "completed"
    view = _udf_rows(session, "get_rebalance_progress()")
    moved = [r for r in view if r[2] == shardid]
    assert len(moved) == 1
    assert moved[0][3] == node and moved[0][4] == target
    assert moved[0][5] == moved[0][6] > 0  # bytes_copied == bytes_total
    assert moved[0][9] == "metadata" and moved[0][10] == "completed"


def test_rebalance_failed_move_is_recorded(citus):
    session = _make_table(citus, rows=30)
    rows = _udf_rows(session, "citus_shards()")
    table, shardid, _name, node, _size = rows[0]
    target = "worker2" if node == "worker1" else "worker1"
    citus.cluster.fail_node(target)
    with pytest.raises(NodeUnavailable):
        session.execute(
            f"SELECT citus_move_shard_placement({shardid}, '{target}')"
        )
    view = _udf_rows(session, "get_rebalance_progress()")
    failed = [r for r in view if r[2] == shardid]
    assert len(failed) == 1
    assert failed[0][10] == "failed"
    assert "NodeUnavailable" in failed[0][11]
    counters = stats_for(citus.cluster).snapshot()
    assert counters.value("rebalancer_moves_failed") >= 1


# ------------------------------------------------------------ tenant stats


def test_tenant_stats_attribute_rows_under_plan_cache(citus):
    session = _make_table(citus)
    # The seed INSERTs are tenant-attributed too; start from a clean slate
    # so only the measured statements count.
    session.execute("SELECT citus_stat_reset('tenants')")
    before = stats_for(citus.cluster).snapshot().value("plan_cache_hits")
    for _ in range(2):
        session.execute("SELECT v FROM accounts WHERE k = $1", [5])
        session.execute("SELECT v FROM accounts WHERE k = $1", [9])
    after = stats_for(citus.cluster).snapshot().value("plan_cache_hits")
    assert after > before  # the fast path really was cached
    rows = {r[0]: r for r in _udf_rows(session, "citus_stat_tenants()")}
    assert rows[5][1] == 2 and rows[5][2] == 2
    assert rows[9][1] == 2 and rows[9][2] == 2
    assert rows[5][3] >= 0.0 and rows[5][4] >= 0.0


def test_tenant_stats_include_wait_time_of_blocked_writer(citus):
    a = _make_table(citus)
    b = citus.coordinator_session()
    a.execute("BEGIN")
    a.execute("UPDATE accounts SET v = 100 WHERE k = 3")
    fut = b.execute_async("UPDATE accounts SET v = 200 WHERE k = 3")
    citus.pump()
    citus.cluster.clock.advance(1.5)
    a.execute("COMMIT")
    citus.pump()
    assert fut.get().rowcount == 1
    rows = {r[0]: r for r in _udf_rows(a, "citus_stat_tenants()")}
    # Tenant 3 spent the blocked interval waiting; attribution must
    # include it (total_wait_time_ms > the advance we injected).
    assert rows[3][4] >= 1500.0


# ------------------------------------------------------------------ resets


def test_stat_counters_reset_clears_wait_events_and_tenants(citus):
    session = _make_table(citus)
    session.execute("SELECT v FROM accounts WHERE k = 5")
    assert wait_totals(stats_for(citus.cluster))
    assert _udf_rows(session, "citus_stat_tenants()")
    session.execute("SELECT citus_stat_counters_reset()")
    assert not wait_totals(stats_for(citus.cluster))
    assert _udf_rows(session, "citus_stat_tenants()") == []


def test_citus_stat_reset_modes(citus):
    session = _make_table(citus)
    session.execute("SELECT v FROM accounts WHERE k = 5")
    session.execute("SELECT citus_stat_reset('tenants')")
    assert _udf_rows(session, "citus_stat_tenants()") == []
    assert wait_totals(stats_for(citus.cluster))  # counters untouched
    session.execute("SELECT citus_stat_reset('all')")
    assert not wait_totals(stats_for(citus.cluster))
    assert _udf_rows(session, "citus_stat_statements()") == []
    with pytest.raises(Exception):
        session.execute("SELECT citus_stat_reset('bogus')")


# ----------------------------------------------------------------- metrics


def test_metrics_snapshot_renders_prometheus_text(citus):
    session = _make_table(citus)
    text = _udf_rows(session, "citus_metrics_snapshot()")
    assert isinstance(text, str)
    lines = text.splitlines()
    assert "# TYPE citus_wait_events_total counter" in lines
    assert any(l.startswith("citus_wait_events_total{") for l in lines)
    assert any(l.startswith("citus_wait_time_seconds_total{") for l in lines)
    assert 'citus_node_up{node="worker1"} 1' in lines
    assert 'citus_node_up{node="worker2"} 1' in lines
    assert any(l.startswith("citus_node_connections{") for l in lines)
    assert any(l.startswith("citus_planner_total_total") for l in lines)
    # Deterministic: identical state renders byte-identically.
    assert text == _udf_rows(session, "citus_metrics_snapshot()")


def test_metrics_snapshot_reports_down_node(citus):
    session = _make_table(citus)
    citus.cluster.fail_node("worker2")
    text = _udf_rows(session, "citus_metrics_snapshot()")
    assert 'citus_node_up{node="worker2"} 0' in text.splitlines()
