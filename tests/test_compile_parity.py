"""Compiled expressions must be indistinguishable from the interpreter.

``repro.engine.compile.get_compiled`` turns expression ASTs into closures
for the executor's per-row loops. These tests run the same expression
through both paths — ``evaluate`` and the compiled closure — over the
corpus exercised by ``test_expr_functions.py`` (three-valued logic,
comparisons, arithmetic, string/date functions, CASE, casts, IN/BETWEEN,
LIKE) plus Hypothesis-generated operand combinations, asserting identical
results *and* identical errors (same exception type and message).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.compile import get_compiled
from repro.engine.expr import EvalContext, Row, evaluate
from repro.errors import DataError
from repro.sql import parse_expression


def both(text, **bindings):
    """Evaluate ``text`` interpreted and compiled; assert parity; return
    the interpreted outcome tag."""
    expr = parse_expression(text)
    row = Row()
    for name, value in bindings.items():
        row.bind(None, name, value)
    ctx = EvalContext(row=row)

    def run(fn):
        try:
            return ("ok", fn())
        except DataError as exc:
            return ("err", type(exc).__name__, str(exc))

    interpreted = run(lambda: evaluate(expr, ctx))
    compiled = run(lambda: get_compiled(expr)(ctx))
    assert compiled == interpreted, (
        f"{text!r} with {bindings}: interpreted={interpreted} "
        f"compiled={compiled}"
    )
    return interpreted


# The corpus from test_expr_functions.py, as (expression, bindings) pairs.
CORPUS = [
    # three-valued logic
    ("NULL AND false", {}),
    ("NULL AND true", {}),
    ("NULL OR true", {}),
    ("NULL OR false", {}),
    ("NOT NULL", {}),
    ("1 = NULL", {}),
    ("NULL <> NULL", {}),
    ("1 + NULL", {}),
    ("coalesce(NULL, NULL, 3)", {}),
    ("nullif(5, 5)", {}),
    ("nullif(5, 6)", {}),
    ("1 IN (1, NULL)", {}),
    ("2 IN (1, NULL)", {}),
    ("2 NOT IN (1, NULL)", {}),
    # operators
    ("7 / 2", {}),
    ("-7 / 2", {}),
    ("7 % 3", {}),
    ("1 / 0", {}),
    ("1 % 0", {}),
    ("2 < 10", {}),
    ("'2' < '10'", {}),
    ("1.5 + 2", {}),
    ("-(-3)", {}),
    ("'abc' || 'def'", {}),
    ("'a' || NULL", {}),
    ("true AND false OR true", {}),
    ("x IS NULL", {"x": None}),
    ("x IS NOT NULL", {"x": None}),
    ("x IS NULL", {"x": 1}),
    # BETWEEN
    ("5 BETWEEN 1 AND 9", {}),
    ("5 NOT BETWEEN 1 AND 9", {}),
    ("NULL BETWEEN 1 AND 9", {}),
    ("5 BETWEEN NULL AND 9", {}),
    # CASE
    ("CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END",
     {"x": 3}),
    ("CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END",
     {"x": -3}),
    ("CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END",
     {"x": 0}),
    ("CASE WHEN x > 0 THEN 'pos' END", {"x": None}),
    ("CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' ELSE 'many' END", {"x": 2}),
    ("CASE x WHEN 1 THEN 'one' ELSE 'many' END", {"x": None}),
    # casts
    ("CAST('42' AS int)", {}),
    ("CAST('oops' AS int)", {}),
    ("CAST(1 AS boolean)", {}),
    ("CAST('2024-02-29' AS date)", {}),
    ("'7'::int + 1", {}),
    # LIKE / regex
    ("'hello' LIKE 'h%'", {}),
    ("'hello' LIKE 'h_llo'", {}),
    ("'hello' NOT LIKE 'x%'", {}),
    ("'HELLO' ILIKE 'he%'", {}),
    ("x LIKE 'a%'", {"x": None}),
    ("'hello' ~ 'l+o'", {}),
    # string functions
    ("lower('ABC')", {}),
    ("upper('abc')", {}),
    ("length('abcd')", {}),
    ("substring('abcdef', 2, 3)", {}),
    ("concat('a', NULL, 'b')", {}),
    ("abs(-5)", {}),
    ("round(2.567, 2)", {}),
    ("greatest(1, 9, 4)", {}),
    ("least(1, 9, 4)", {}),
    ("power(2, 10)", {}),
    # arrays
    ("ARRAY[1, 2, 3]", {}),
    ("2 = ANY(ARRAY[1, 2, 3])", {}),
]


class TestCorpusParity:
    @pytest.mark.parametrize("text,bindings", CORPUS,
                             ids=[c[0] for c in CORPUS])
    def test_compiled_matches_interpreted(self, text, bindings):
        both(text, **bindings)

    def test_division_by_zero_is_the_same_error(self):
        tag = both("1 / 0")
        assert tag[0] == "err"
        assert "division by zero" in tag[2]

    def test_bad_cast_is_the_same_error(self):
        assert both("CAST('oops' AS int)")[0] == "err"


scalars = st.one_of(
    st.none(),
    st.integers(min_value=-100, max_value=100),
    st.booleans(),
    st.text(alphabet="ab%_", max_size=4),
)


class TestPropertyParity:
    @given(a=st.one_of(st.none(), st.integers(-20, 20)),
           b=st.one_of(st.none(), st.integers(-20, 20)),
           op=st.sampled_from(["+", "-", "*", "/", "%", "=", "<>", "<",
                               "<=", ">", ">="]))
    def test_binary_ops(self, a, b, op):
        both(f"x {op} y", x=a, y=b)

    @given(a=st.one_of(st.none(), st.booleans()),
           b=st.one_of(st.none(), st.booleans()),
           op=st.sampled_from(["AND", "OR"]))
    def test_kleene_logic(self, a, b, op):
        both(f"x {op} y", x=a, y=b)

    @given(v=st.one_of(st.none(), st.integers(-10, 10)),
           lo=st.one_of(st.none(), st.integers(-10, 10)),
           hi=st.one_of(st.none(), st.integers(-10, 10)),
           negated=st.booleans())
    def test_between(self, v, lo, hi, negated):
        kw = "NOT BETWEEN" if negated else "BETWEEN"
        both(f"x {kw} y AND z", x=v, y=lo, z=hi)

    @given(v=st.one_of(st.none(), st.integers(0, 5)),
           items=st.lists(st.one_of(st.none(), st.integers(0, 5)),
                          min_size=1, max_size=4),
           negated=st.booleans())
    def test_in_list(self, v, items, negated):
        kw = "NOT IN" if negated else "IN"
        names = [f"i{n}" for n in range(len(items))]
        text = f"x {kw} ({', '.join(names)})"
        both(text, x=v, **dict(zip(names, items)))

    @given(s=st.one_of(st.none(), st.text(alphabet="abc", max_size=5)),
           pattern=st.text(alphabet="abc%_", max_size=4))
    def test_like(self, s, pattern):
        both("x LIKE p", x=s, p=pattern)
