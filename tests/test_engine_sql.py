"""End-to-end SQL tests against a single engine instance: the PostgreSQL
substrate Citus builds on."""

import pytest

from repro.errors import (
    CatalogError,
    DataError,
    ForeignKeyViolation,
    NotNullViolation,
    UniqueViolation,
)


@pytest.fixture
def s(session):
    session.execute(
        "CREATE TABLE t (id serial PRIMARY KEY, k int, v text, f float)"
    )
    session.execute(
        "INSERT INTO t (k, v, f) VALUES"
        " (1, 'a', 1.5), (1, 'b', 2.5), (2, 'c', 3.5), (2, 'd', NULL), (3, NULL, 5.0)"
    )
    return session


class TestSelectBasics:
    def test_select_constant_no_from(self, session):
        assert session.execute("SELECT 1 + 2").scalar() == 3

    def test_projection_and_alias(self, s):
        r = s.execute("SELECT k AS key, v FROM t WHERE id = 1")
        assert r.columns == ["key", "v"]
        assert r.rows == [[1, "a"]]

    def test_star(self, s):
        r = s.execute("SELECT * FROM t WHERE id = 3")
        assert r.columns == ["id", "k", "v", "f"]

    def test_where_filters(self, s):
        assert s.execute("SELECT count(*) FROM t WHERE k = 1").scalar() == 2

    def test_where_null_comparison_excludes(self, s):
        # NULL = NULL is not true
        assert s.execute("SELECT count(*) FROM t WHERE v = NULL").scalar() == 0

    def test_is_null(self, s):
        assert s.execute("SELECT count(*) FROM t WHERE v IS NULL").scalar() == 1

    def test_order_by_desc_with_null(self, s):
        rows = s.execute("SELECT f FROM t ORDER BY f DESC").rows
        assert rows[0][0] is None  # PostgreSQL: NULLS FIRST on DESC
        assert rows[1][0] == 5.0

    def test_order_by_nulls_last(self, s):
        rows = s.execute("SELECT f FROM t ORDER BY f DESC NULLS LAST").rows
        assert rows[-1][0] is None

    def test_order_by_positional(self, s):
        rows = s.execute("SELECT k, f FROM t WHERE f IS NOT NULL ORDER BY 2 DESC").rows
        assert rows[0][1] == 5.0

    def test_limit_offset(self, s):
        rows = s.execute("SELECT id FROM t ORDER BY id LIMIT 2 OFFSET 1").rows
        assert rows == [[2], [3]]

    def test_distinct(self, s):
        rows = s.execute("SELECT DISTINCT k FROM t ORDER BY k").rows
        assert rows == [[1], [2], [3]]

    def test_distinct_on(self, s):
        rows = s.execute("SELECT DISTINCT ON (k) k, v FROM t ORDER BY k, v").rows
        assert rows == [[1, "a"], [2, "c"], [3, None]]

    def test_in_list(self, s):
        assert s.execute("SELECT count(*) FROM t WHERE k IN (1, 3)").scalar() == 3

    def test_between(self, s):
        assert s.execute("SELECT count(*) FROM t WHERE f BETWEEN 2 AND 4").scalar() == 2

    def test_case_expression(self, s):
        rows = s.execute(
            "SELECT id, CASE WHEN k = 1 THEN 'one' ELSE 'many' END FROM t ORDER BY id"
        ).rows
        assert rows[0][1] == "one" and rows[2][1] == "many"

    def test_union_all_and_except(self, session):
        rows = session.execute("SELECT 1 UNION ALL SELECT 1 UNION ALL SELECT 2").rows
        assert len(rows) == 3
        rows = session.execute("SELECT 1 UNION SELECT 1").rows
        assert len(rows) == 1

    def test_generate_series(self, session):
        rows = session.execute("SELECT i FROM generate_series(1, 4) AS g (i)").rows
        assert [r[0] for r in rows] == [1, 2, 3, 4]

    def test_cte(self, s):
        rows = s.execute(
            "WITH big AS (SELECT * FROM t WHERE f > 2)"
            " SELECT count(*) FROM big"
        ).rows
        assert rows == [[3]]  # f in {2.5, 3.5, 5.0}


class TestAggregates:
    def test_count_sum_avg_min_max(self, s):
        row = s.execute(
            "SELECT count(*), count(f), sum(f), avg(f), min(f), max(f) FROM t"
        ).first()
        assert row[0] == 5 and row[1] == 4
        assert row[2] == pytest.approx(12.5)
        assert row[3] == pytest.approx(3.125)
        assert row[4] == 1.5 and row[5] == 5.0

    def test_group_by(self, s):
        rows = s.execute("SELECT k, count(*) FROM t GROUP BY k ORDER BY k").rows
        assert rows == [[1, 2], [2, 2], [3, 1]]

    def test_group_by_positional(self, s):
        rows = s.execute("SELECT k, count(*) FROM t GROUP BY 1 ORDER BY 1").rows
        assert len(rows) == 3

    def test_having(self, s):
        rows = s.execute(
            "SELECT k FROM t GROUP BY k HAVING count(*) > 1 ORDER BY k"
        ).rows
        assert rows == [[1], [2]]

    def test_count_distinct(self, s):
        assert s.execute("SELECT count(DISTINCT k) FROM t").scalar() == 3

    def test_aggregate_on_empty_input(self, s):
        row = s.execute("SELECT count(*), sum(f), max(v) FROM t WHERE k = 99").first()
        assert row == [0, None, None]

    def test_group_by_empty_input_no_rows(self, s):
        rows = s.execute("SELECT k, count(*) FROM t WHERE k = 99 GROUP BY k").rows
        assert rows == []

    def test_filter_clause(self, s):
        row = s.execute(
            "SELECT count(*) FILTER (WHERE k = 1), count(*) FROM t"
        ).first()
        assert row == [2, 5]

    def test_expression_over_aggregates(self, s):
        value = s.execute("SELECT sum(f) / count(f) FROM t").scalar()
        assert value == pytest.approx(12.5 / 4)

    def test_string_agg_and_array_agg(self, s):
        row = s.execute(
            "SELECT array_agg(v) FROM t WHERE k = 1"
        ).scalar()
        assert row == ["a", "b"]

    def test_stddev(self, session):
        session.execute("CREATE TABLE n (x float)")
        session.execute("INSERT INTO n VALUES (2), (4), (4), (4), (5), (5), (7), (9)")
        value = session.execute("SELECT stddev(x) FROM n").scalar()
        assert value == pytest.approx(2.138, abs=0.01)


class TestJoins:
    @pytest.fixture
    def joined(self, session):
        session.execute("CREATE TABLE a (id int PRIMARY KEY, x int)")
        session.execute("CREATE TABLE b (id int PRIMARY KEY, a_id int, y text)")
        session.execute("INSERT INTO a VALUES (1, 10), (2, 20), (3, 30)")
        session.execute(
            "INSERT INTO b VALUES (1, 1, 'p'), (2, 1, 'q'), (3, 2, 'r'), (4, 9, 's')"
        )
        return session

    def test_inner_join(self, joined):
        rows = joined.execute(
            "SELECT a.x, b.y FROM a JOIN b ON a.id = b.a_id ORDER BY b.id"
        ).rows
        assert rows == [[10, "p"], [10, "q"], [20, "r"]]

    def test_left_join_null_extension(self, joined):
        rows = joined.execute(
            "SELECT a.id, b.y FROM a LEFT JOIN b ON a.id = b.a_id ORDER BY a.id, b.y"
        ).rows
        assert [3, None] in rows

    def test_right_join(self, joined):
        rows = joined.execute(
            "SELECT b.id, a.x FROM a RIGHT JOIN b ON a.id = b.a_id ORDER BY b.id"
        ).rows
        assert [4, None] in rows

    def test_full_join(self, joined):
        rows = joined.execute(
            "SELECT a.id, b.id FROM a FULL JOIN b ON a.id = b.a_id"
        ).rows
        assert len(rows) == 5  # 3 matched + a.3 + b.4

    def test_cross_join(self, joined):
        assert len(joined.execute("SELECT * FROM a CROSS JOIN b").rows) == 12

    def test_comma_join_with_where_is_hash_join(self, joined):
        rows = joined.execute(
            "SELECT count(*) FROM a, b WHERE a.id = b.a_id"
        ).rows
        assert rows == [[3]]

    def test_self_join_with_aliases(self, joined):
        rows = joined.execute(
            "SELECT x.id, y.id FROM a x JOIN a y ON x.id < y.id"
        ).rows
        assert len(rows) == 3

    def test_using(self, joined):
        rows = joined.execute("SELECT count(*) FROM a JOIN b USING (id)").rows
        assert rows == [[3]]


class TestSubqueries:
    def test_scalar_subquery(self, s):
        value = s.execute("SELECT (SELECT max(f) FROM t)").scalar()
        assert value == 5.0

    def test_in_subquery(self, s):
        rows = s.execute(
            "SELECT id FROM t WHERE k IN (SELECT k FROM t WHERE f > 3) ORDER BY id"
        ).rows
        assert [r[0] for r in rows] == [3, 4, 5]

    def test_correlated_exists(self, session):
        session.execute("CREATE TABLE o (id int PRIMARY KEY)")
        session.execute("CREATE TABLE l (o_id int, qty int)")
        session.execute("INSERT INTO o VALUES (1), (2), (3)")
        session.execute("INSERT INTO l VALUES (1, 5), (3, 7)")
        rows = session.execute(
            "SELECT id FROM o WHERE EXISTS (SELECT 1 FROM l WHERE l.o_id = o.id)"
            " ORDER BY id"
        ).rows
        assert rows == [[1], [3]]

    def test_scalar_subquery_multiple_rows_errors(self, s):
        with pytest.raises(DataError):
            s.execute("SELECT (SELECT k FROM t)")

    def test_subquery_in_from(self, s):
        value = s.execute(
            "SELECT sum(c) FROM (SELECT k, count(*) AS c FROM t GROUP BY k) AS g"
        ).scalar()
        assert value == 5


class TestDml:
    def test_insert_returning(self, s):
        r = s.execute("INSERT INTO t (k, v) VALUES (9, 'z') RETURNING id, k")
        assert r.rows[0][1] == 9

    def test_insert_defaults_and_serial(self, session):
        session.execute("CREATE TABLE d (id serial PRIMARY KEY, n int DEFAULT 7)")
        session.execute("INSERT INTO d (n) VALUES (1)")
        session.execute("INSERT INTO d DEFAULT VALUES")
        rows = session.execute("SELECT id, n FROM d ORDER BY id").rows
        assert rows == [[1, 1], [2, 7]]

    def test_update_rowcount(self, s):
        r = s.execute("UPDATE t SET v = 'updated' WHERE k = 1")
        assert r.rowcount == 2

    def test_update_expression_references_old_value(self, s):
        s.execute("UPDATE t SET f = f * 2 WHERE id = 1")
        assert s.execute("SELECT f FROM t WHERE id = 1").scalar() == 3.0

    def test_delete_returning(self, s):
        r = s.execute("DELETE FROM t WHERE k = 3 RETURNING id")
        assert r.rowcount == 1 and r.rows == [[5]]

    def test_unique_violation(self, s):
        with pytest.raises(UniqueViolation):
            s.execute("INSERT INTO t (id, k) VALUES (1, 5)")

    def test_not_null_violation(self, session):
        session.execute("CREATE TABLE nn (a int NOT NULL)")
        with pytest.raises(NotNullViolation):
            session.execute("INSERT INTO nn VALUES (NULL)")

    def test_on_conflict_do_nothing(self, s):
        r = s.execute("INSERT INTO t (id, k) VALUES (1, 99) ON CONFLICT DO NOTHING")
        assert r.rowcount == 0
        assert s.execute("SELECT k FROM t WHERE id = 1").scalar() == 1

    def test_on_conflict_do_update_with_excluded(self, session):
        session.execute("CREATE TABLE kv (k int PRIMARY KEY, v int)")
        session.execute("INSERT INTO kv VALUES (1, 10)")
        session.execute(
            "INSERT INTO kv VALUES (1, 20) ON CONFLICT (k) DO UPDATE SET v = excluded.v"
        )
        assert session.execute("SELECT v FROM kv WHERE k = 1").scalar() == 20

    def test_update_unique_violation(self, session):
        session.execute("CREATE TABLE u (k int PRIMARY KEY)")
        session.execute("INSERT INTO u VALUES (1), (2)")
        with pytest.raises(UniqueViolation):
            session.execute("UPDATE u SET k = 1 WHERE k = 2")


class TestForeignKeys:
    @pytest.fixture
    def fk(self, session):
        session.execute("CREATE TABLE parent (id int PRIMARY KEY)")
        session.execute(
            "CREATE TABLE child (id int PRIMARY KEY, parent_id int"
            " REFERENCES parent (id))"
        )
        session.execute("INSERT INTO parent VALUES (1), (2)")
        return session

    def test_valid_insert(self, fk):
        fk.execute("INSERT INTO child VALUES (1, 1)")

    def test_fk_violation_on_insert(self, fk):
        with pytest.raises(ForeignKeyViolation):
            fk.execute("INSERT INTO child VALUES (1, 99)")

    def test_null_fk_allowed(self, fk):
        fk.execute("INSERT INTO child VALUES (1, NULL)")

    def test_restrict_on_delete(self, fk):
        fk.execute("INSERT INTO child VALUES (1, 1)")
        with pytest.raises(ForeignKeyViolation):
            fk.execute("DELETE FROM parent WHERE id = 1")

    def test_delete_unreferenced_parent_ok(self, fk):
        fk.execute("INSERT INTO child VALUES (1, 1)")
        fk.execute("DELETE FROM parent WHERE id = 2")


class TestDdl:
    def test_create_drop(self, session):
        session.execute("CREATE TABLE x (a int)")
        session.execute("DROP TABLE x")
        with pytest.raises(CatalogError):
            session.execute("SELECT * FROM x")

    def test_create_if_not_exists(self, session):
        session.execute("CREATE TABLE x (a int)")
        session.execute("CREATE TABLE IF NOT EXISTS x (a int)")

    def test_duplicate_table_errors(self, session):
        session.execute("CREATE TABLE x (a int)")
        with pytest.raises(CatalogError):
            session.execute("CREATE TABLE x (a int)")

    def test_alter_add_column_with_default(self, s):
        s.execute("ALTER TABLE t ADD COLUMN extra int DEFAULT 42")
        assert s.execute("SELECT extra FROM t WHERE id = 1").scalar() == 42

    def test_alter_drop_column(self, s):
        s.execute("ALTER TABLE t DROP COLUMN f")
        with pytest.raises(CatalogError):
            s.execute("SELECT f FROM t")

    def test_truncate(self, s):
        s.execute("TRUNCATE TABLE t")
        assert s.execute("SELECT count(*) FROM t").scalar() == 0

    def test_index_scan_used_for_pk(self, s):
        s.execute("SELECT * FROM t WHERE id = 2")
        assert s.stats["index_lookups"] >= 1

    def test_secondary_index_backfill(self, s):
        s.execute("CREATE INDEX t_k_idx ON t (k)")
        before = s.stats["index_lookups"]
        assert s.execute("SELECT count(*) FROM t WHERE k = 1").scalar() == 2
        assert s.stats["index_lookups"] > before

    def test_range_scan_via_index(self, s):
        s.execute("CREATE INDEX t_f_idx ON t (f)")
        rows = s.execute("SELECT f FROM t WHERE f > 2 AND f < 4 ORDER BY f").rows
        assert rows == [[2.5], [3.5]]


class TestCopyAndVacuum:
    def test_copy_rows(self, s):
        n = s.copy_rows("t", [[100, 5, "c1", 1.0], [101, 5, "c2", 2.0]])
        assert n == 2
        assert s.execute("SELECT count(*) FROM t WHERE k = 5").scalar() == 2

    def test_copy_csv_text(self, session):
        session.execute("CREATE TABLE c (a int, b text)")
        r = session.execute(
            "COPY c FROM STDIN WITH (FORMAT csv)", copy_data="1,x\n2,y\n"
        )
        assert r.rowcount == 2

    def test_copy_unique_violation(self, s):
        with pytest.raises(UniqueViolation):
            s.copy_rows("t", [[1, 9, "dup", 0.0]])

    def test_vacuum_reclaims_dead_tuples(self, session):
        session.execute("CREATE TABLE vt (a int)")
        session.execute("INSERT INTO vt VALUES (1), (2), (3)")
        session.execute("UPDATE vt SET a = a + 10")
        table = session.instance.catalog.get_table("vt")
        versions_before = len(table.heap.tuples)
        session.execute("VACUUM vt")
        assert len(table.heap.tuples) < versions_before
        assert session.execute("SELECT count(*) FROM vt").scalar() == 3


class TestJsonb:
    def test_arrow_operators(self, session):
        session.execute("CREATE TABLE j (d jsonb)")
        session.execute("""INSERT INTO j VALUES ('{"a": {"b": [1, 2, 3]}}')""")
        assert session.execute("SELECT d->'a'->'b' FROM j").scalar() == [1, 2, 3]
        assert session.execute("SELECT d#>>'{a,b,1}' FROM j").scalar() == "2"

    def test_containment(self, session):
        session.execute("CREATE TABLE j (d jsonb)")
        session.execute("""INSERT INTO j VALUES ('{"tags": ["x", "y"]}')""")
        assert session.execute(
            """SELECT count(*) FROM j WHERE d @> '{"tags": ["x"]}'"""
        ).scalar() == 1

    def test_jsonb_path_query_array(self, session):
        session.execute("CREATE TABLE j (d jsonb)")
        session.execute(
            """INSERT INTO j VALUES ('{"items": [{"n": "a"}, {"n": "b"}]}')"""
        )
        value = session.execute(
            "SELECT jsonb_path_query_array(d, '$.items[*].n') FROM j"
        ).scalar()
        assert value == ["a", "b"]


class TestExplain:
    def test_seq_scan(self, s):
        text = "\n".join(r[0] for r in s.execute("EXPLAIN SELECT * FROM t").rows)
        assert "Seq Scan on t" in text

    def test_insert(self, s):
        text = s.execute("EXPLAIN INSERT INTO t (k) VALUES (1)").rows[0][0]
        assert "Insert" in text
