"""Unit tests for the cluster/network substrate: clock, latency accounting,
node lifecycle, remote connections."""

import pytest

from repro.engine import InstanceSpec
from repro.errors import NodeUnavailable
from repro.net import Cluster, NetworkSpec, SimClock


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        clock.advance_ms(500)
        assert clock.now() == pytest.approx(2.0)

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)


class TestNetworkAccounting:
    def test_round_trip_latency_and_counters(self):
        cluster = Cluster(network_spec=NetworkSpec(rtt_ms=2.0))
        latency = cluster.network.note_round_trip(payload_bytes=1000)
        assert latency >= 0.002
        assert cluster.network.messages_sent == 1
        assert cluster.network.bytes_sent == 1000

    def test_connection_setup_cost(self):
        cluster = Cluster(network_spec=NetworkSpec(connection_setup_ms=15))
        assert cluster.network.connection_setup_cost() == pytest.approx(0.015)


class TestClusterLifecycle:
    def test_add_and_connect(self):
        cluster = Cluster()
        cluster.add_node("n1")
        conn = cluster.connect("n1")
        assert conn.execute("SELECT 1").scalar() == 1
        assert conn.round_trips == 1

    def test_duplicate_node_rejected(self):
        cluster = Cluster()
        cluster.add_node("n1")
        with pytest.raises(ValueError):
            cluster.add_node("n1")

    def test_unknown_node(self):
        with pytest.raises(NodeUnavailable):
            Cluster().node("ghost")

    def test_nodes_share_clock(self):
        cluster = Cluster()
        a = cluster.add_node("a")
        b = cluster.add_node("b")
        cluster.clock.advance(5)
        assert a.now() == b.now() == 5.0

    def test_custom_spec_per_node(self):
        cluster = Cluster()
        node = cluster.add_node("big", InstanceSpec(cores=64, memory_gb=256))
        assert node.spec.cores == 64

    def test_total_memory(self):
        cluster = Cluster(spec=InstanceSpec(memory_gb=64))
        cluster.add_node("a")
        cluster.add_node("b")
        assert cluster.total_memory_gb() == 128


class TestRemoteConnection:
    def test_close_rolls_back_open_txn(self):
        cluster = Cluster()
        node = cluster.add_node("n1")
        setup = node.connect()
        setup.execute("CREATE TABLE t (a int)")
        conn = cluster.connect("n1")
        conn.execute("BEGIN")
        conn.in_txn_block = True
        conn.execute("INSERT INTO t VALUES (1)")
        conn.close()
        assert setup.execute("SELECT count(*) FROM t").scalar() == 0

    def test_execute_after_close_rejected(self):
        cluster = Cluster()
        cluster.add_node("n1")
        conn = cluster.connect("n1")
        conn.close()
        with pytest.raises(NodeUnavailable):
            conn.execute("SELECT 1")

    def test_elapsed_accumulates(self):
        cluster = Cluster(network_spec=NetworkSpec(rtt_ms=1.0))
        cluster.add_node("n1")
        conn = cluster.connect("n1")
        conn.execute("SELECT 1")
        conn.execute("SELECT 2")
        assert conn.elapsed >= 0.002
