"""Streaming tuple pipeline: cursor-based engine execution, batched wire
transfer, and the streaming coordinator merge.

Covers the pull-based data plane end to end:

- engine layer: ``EngineCursor`` semantics and genuine lazy scans (a
  satisfied LIMIT stops the heap scan early);
- wire layer: ``RemoteCursor`` per-batch byte-size charging and early
  ``close()``, plus the ``copy_rows`` closed-connection/up-front-charge fix;
- executor/merge layer: bounded coordinator buffering (the acceptance
  criterion: ``rows_buffered_peak`` ≤ batch_size × shard_count for a
  multi-shard ORDER BY … LIMIT over ≥ 10k rows), LIMIT early-stop skipping
  undispatched tasks, result parity with the materializing fallback, and
  the new ``citus_stat_counters()`` entries;
- the satellite regressions: parked statements while cursors are open, and
  ``accessed_groups`` affinity clearing after non-transactional statements.
"""

import pytest

from repro import make_cluster
from repro.errors import NodeUnavailable

from .conftest import find_keys_on_distinct_nodes


def counters_dict(session):
    """citus_stat_counters() rows as {(name, node): value}."""
    rows = session.execute("SELECT citus_stat_counters()").rows
    out = {}
    for (entries,) in rows:
        for name, node, value in entries:
            out[(name, node)] = value
    return out


def counter_total(session, name):
    return sum(v for (n, _node), v in counters_dict(session).items() if n == name)


@pytest.fixture
def big(citus):
    """10k rows across 8 shards on the 2-worker cluster."""
    s = citus.coordinator_session()
    s.execute("CREATE TABLE events (k int PRIMARY KEY, v int, label text)")
    s.execute("SELECT create_distributed_table('events', 'k')")
    rows = [[k, k % 500, f"label-{k}"] for k in range(1, 10_001)]
    s.copy_rows("events", rows, ["k", "v", "label"])
    return s


def run_materialized(citus, session, sql, params=None):
    """Execute with the streaming pipeline disabled (the fallback plane)."""
    ext = citus.coordinator_ext
    ext.config.enable_streaming_pipeline = False
    try:
        return session.execute(sql, params)
    finally:
        ext.config.enable_streaming_pipeline = True


# --------------------------------------------------------------- acceptance


class TestBoundedBuffering:
    def test_order_by_limit_bounded_peak(self, citus, big):
        """The acceptance criterion: a multi-shard ORDER BY … LIMIT 10 over
        10k rows / 8 shards keeps the coordinator buffer bounded, asserted
        against citus_stat_counters()."""
        ext = citus.coordinator_ext
        result = big.execute("SELECT k, v FROM events ORDER BY v, k LIMIT 10")
        assert len(result.rows) == 10

        batch_size = ext.config.stream_batch_size
        shard_count = 8
        report = ext.executor.last_report
        assert report.task_count == shard_count
        assert 0 < report.rows_buffered_peak <= batch_size * shard_count

        counters = counters_dict(big)
        gauge_peak = counters[("rows_buffered_peak", None)]
        assert 0 < gauge_peak <= batch_size * shard_count

    def test_peak_far_below_total_rows(self, citus, big):
        # Streaming the full 10k-row table through an un-limited ORDER BY
        # must never buffer anything near the total result.
        big.execute("SELECT k FROM events ORDER BY v")
        report = citus.coordinator_ext.executor.last_report
        assert report.rows_buffered_peak < 10_000 / 2

    def test_group_merge_buffer_is_one_batch(self, citus, big):
        big.execute("SELECT v, count(*) FROM events GROUP BY v")
        report = citus.coordinator_ext.executor.last_report
        # Incremental merge holds at most one in-flight worker batch.
        assert report.rows_buffered_peak <= citus.coordinator_ext.config.stream_batch_size


class TestEarlyTermination:
    def test_limit_without_order_skips_tasks(self, citus, big):
        result = big.execute("SELECT k FROM events LIMIT 5")
        assert len(result.rows) == 5
        report = citus.coordinator_ext.executor.last_report
        assert report.early_terminations == 1
        # Only the stream(s) needed to satisfy the LIMIT were dispatched.
        assert report.tasks_skipped >= 6

    def test_early_termination_counter_exposed(self, citus, big):
        before = counter_total(big, "early_terminations")
        big.execute("SELECT k FROM events LIMIT 1")
        big.execute("SELECT k, v FROM events ORDER BY v LIMIT 1")
        assert counter_total(big, "early_terminations") == before + 2

    def test_full_drain_is_not_early_terminated(self, citus, big):
        before = counter_total(big, "early_terminations")
        big.execute("SELECT count(*) FROM events")
        big.execute("SELECT k FROM events WHERE v = 1")
        assert counter_total(big, "early_terminations") == before


class TestStreamingCounters:
    def test_bytes_and_batches_counted(self, citus, big):
        before = counters_dict(big)
        big.execute("SELECT k, v, label FROM events WHERE v < 50")
        after = counters_dict(big)
        batches = sum(
            after.get(("batches_fetched", w), 0) - before.get(("batches_fetched", w), 0)
            for w in citus.worker_names()
        )
        bytes_streamed = sum(
            after.get(("bytes_streamed", w), 0) - before.get(("bytes_streamed", w), 0)
            for w in citus.worker_names()
        )
        assert batches > 0
        assert bytes_streamed > 0
        report = citus.coordinator_ext.executor.last_report
        assert report.batches_fetched == batches
        assert report.bytes_streamed == bytes_streamed

    def test_payload_charged_from_actual_row_bytes(self, citus, big):
        # Wider rows must charge more bytes than narrow ones for the same
        # row count (bandwidth-aware accounting, not a flat guess).
        big.execute("SELECT k FROM events WHERE v = 7")
        narrow = citus.coordinator_ext.executor.last_report.bytes_streamed
        big.execute("SELECT k, v, label FROM events WHERE v = 7")
        wide = citus.coordinator_ext.executor.last_report.bytes_streamed
        assert wide > narrow

    def test_gauges_settle_to_zero(self, citus, big):
        big.execute("SELECT k FROM events ORDER BY v LIMIT 3")
        big.execute("SELECT v, sum(k) FROM events GROUP BY v")
        counters = counters_dict(big)
        assert counters.get(("executor_statements_in_flight", None), 0) == 0
        for worker in citus.worker_names():
            assert counters.get(("tasks_in_flight", worker), 0) == 0


# ------------------------------------------------------------------ parity


PARITY_QUERIES = [
    "SELECT k, v FROM events ORDER BY v, k LIMIT 20",
    "SELECT k, v FROM events ORDER BY v DESC, k LIMIT 20",
    "SELECT k FROM events ORDER BY label DESC LIMIT 7",
    "SELECT k, v FROM events ORDER BY 2 DESC, 1 LIMIT 15",
    "SELECT k, v FROM events WHERE v < 30 ORDER BY v, k",
    "SELECT k FROM events ORDER BY v OFFSET 5 LIMIT 10",
    "SELECT DISTINCT v FROM events WHERE v < 40 ORDER BY v",
    "SELECT count(*), sum(v) FROM events",
    "SELECT v, count(*), sum(k) FROM events GROUP BY v ORDER BY v LIMIT 25",
    "SELECT v, count(*) FROM events GROUP BY v HAVING count(*) > 10 ORDER BY v",
    "SELECT avg(v) FROM events WHERE k <= 5000",
]


class TestStreamingMaterializedParity:
    @pytest.mark.parametrize("sql", PARITY_QUERIES)
    def test_same_rows_as_fallback(self, citus, big, sql):
        streamed = big.execute(sql)
        materialized = run_materialized(citus, big, sql)
        assert streamed.columns == materialized.columns
        assert streamed.rows == materialized.rows

    def test_nulls_ordering_parity(self, citus):
        s = citus.coordinator_session()
        s.execute("CREATE TABLE n (k int PRIMARY KEY, v int)")
        s.execute("SELECT create_distributed_table('n', 'k')")
        for k in range(1, 41):
            v = "NULL" if k % 5 == 0 else str(k % 7)
            s.execute(f"INSERT INTO n VALUES ({k}, {v})")
        for sql in [
            "SELECT v, k FROM n ORDER BY v, k",
            "SELECT v, k FROM n ORDER BY v DESC, k LIMIT 11",
            "SELECT v, k FROM n ORDER BY v NULLS FIRST, k",
        ]:
            assert s.execute(sql).rows == run_materialized(citus, s, sql).rows

    def test_streaming_used_inside_transaction_block(self, citus, big):
        # Affinity + txn blocks still stream; results must see own writes.
        big.execute("BEGIN")
        big.execute("UPDATE events SET v = 99999 WHERE k = 17")
        rows = big.execute(
            "SELECT k FROM events WHERE v = 99999 ORDER BY k"
        ).rows
        assert rows == [[17]]
        big.execute("ROLLBACK")

    def test_plan_cache_replay_streams(self, citus, big):
        sql = "SELECT k FROM events WHERE v = $1 ORDER BY k LIMIT 4"
        first = big.execute(sql, [3]).rows
        again = big.execute(sql, [3]).rows  # replayed from the plan cache
        assert first == again
        report = citus.coordinator_ext.executor.last_report
        assert report.batches_fetched > 0  # replay went through streams


# ----------------------------------------------------------------- EXPLAIN


class TestMergeStrategyExplain:
    def test_merge_append_rendered(self, citus, big):
        text = big.execute(
            "SELECT citus_explain('SELECT k FROM events ORDER BY v LIMIT 5')"
        ).scalar()
        assert "Merge: MergeAppend (streaming)" in text

    def test_limit_early_stop_rendered(self, citus, big):
        text = big.execute(
            "SELECT citus_explain('SELECT k FROM events LIMIT 5')"
        ).scalar()
        assert "Merge: Concat + LIMIT (early-stop)" in text

    def test_group_merge_rendered(self, citus, big):
        text = big.execute(
            "SELECT citus_explain('SELECT v, count(*) FROM events GROUP BY v')"
        ).scalar()
        assert "Merge: GroupAggregate Merge (incremental)" in text

    def test_plain_concat_rendered(self, citus, big):
        text = big.execute(
            "SELECT citus_explain('SELECT k FROM events WHERE v = 1')"
        ).scalar()
        assert "Merge: Concat (streaming)" in text


# ------------------------------------------------------------- engine layer


class TestEngineCursor:
    def test_fetch_batches_and_exhaustion(self, session):
        session.execute("CREATE TABLE t (k int, v int)")
        for k in range(10):
            session.execute(f"INSERT INTO t VALUES ({k}, {k * 10})")
        from repro.sql import parse

        stmt = parse("SELECT k FROM t")[0]
        cursor = session.execute_parsed_cursor(stmt)
        assert cursor is not None
        batches = []
        while True:
            batch = cursor.fetch(4)
            if not batch:
                break
            batches.append(batch)
        assert [len(b) for b in batches] == [4, 4, 2]
        assert cursor.exhausted
        assert cursor.fetch(4) == []

    def test_limit_stops_heap_scan_early(self, session):
        session.execute("CREATE TABLE t (k int, v int)")
        for k in range(200):
            session.execute(f"INSERT INTO t VALUES ({k}, {k})")
        from repro.sql import parse

        before = session.stats["tuples_scanned"]
        stmt = parse("SELECT k FROM t LIMIT 5")[0]
        cursor = session.execute_parsed_cursor(stmt)
        rows = cursor.fetch(100)
        assert len(rows) == 5
        scanned = session.stats["tuples_scanned"] - before
        # Genuinely lazy: the scan stopped at the LIMIT instead of reading
        # all 200 heap tuples.
        assert scanned <= 10

    def test_close_releases_and_autocommits(self, session):
        session.execute("CREATE TABLE t (k int)")
        session.execute("INSERT INTO t VALUES (1)")
        from repro.sql import parse

        cursor = session.execute_parsed_cursor(parse("SELECT k FROM t")[0])
        assert session._open_cursors == 1
        cursor.close()
        assert session._open_cursors == 0
        # Completion ran: the next statement starts a fresh snapshot.
        assert session.execute("SELECT count(*) FROM t").scalar() == 1

    def test_non_select_returns_none(self, session):
        session.execute("CREATE TABLE t (k int)")
        from repro.sql import parse

        assert session.execute_parsed_cursor(parse("INSERT INTO t VALUES (1)")[0]) is None

    def test_sorted_select_materializes_but_batches(self, session):
        session.execute("CREATE TABLE t (k int)")
        for k in (3, 1, 2):
            session.execute(f"INSERT INTO t VALUES ({k})")
        from repro.sql import parse

        cursor = session.execute_parsed_cursor(parse("SELECT k FROM t ORDER BY k")[0])
        assert cursor.fetch(2) == [[1], [2]]
        assert cursor.fetch(2) == [[3]]


# --------------------------------------------------------------- wire layer


class TestRemoteCursor:
    def _cluster_conn(self):
        cluster = make_cluster(workers=1, shard_count=2)
        worker = cluster.cluster.node("worker1")
        conn = cluster.cluster.connect("worker1")
        session = conn.session
        session.execute("CREATE TABLE w (k int, pad text)")
        for k in range(30):
            session.execute(f"INSERT INTO w VALUES ({k}, 'x{k}')")
        return conn

    def test_per_batch_round_trips_and_bytes(self):
        conn = self._cluster_conn()
        from repro.sql import parse

        trips_before = conn.round_trips
        cursor = conn.execute_cursor(parse("SELECT k, pad FROM w")[0], batch_size=10)
        assert conn.round_trips == trips_before + 1  # dispatch only
        b1 = cursor.fetch_batch()
        assert len(b1) == 10
        assert conn.round_trips == trips_before + 2
        assert cursor.last_payload > 0
        assert cursor.bytes_fetched == cursor.last_payload
        while cursor.fetch_batch() is not None:
            pass
        assert cursor.exhausted
        assert cursor.rows_fetched == 30
        assert cursor.batches_fetched == 3

    def test_bigger_rows_cost_more(self):
        from repro.net.network import estimate_row_bytes

        assert estimate_row_bytes([1, "abcdef"]) > estimate_row_bytes([1, "a"])
        assert estimate_row_bytes([None]) < estimate_row_bytes([12345])

    def test_early_close_charges_one_small_trip(self):
        conn = self._cluster_conn()
        from repro.sql import parse

        cursor = conn.execute_cursor(parse("SELECT k FROM w")[0], batch_size=5)
        cursor.fetch_batch()
        trips = conn.round_trips
        elapsed = conn.elapsed
        cursor.close()
        assert conn.round_trips == trips + 1  # CLOSE message
        assert conn.elapsed > elapsed
        assert cursor.fetch_batch() is None

    def test_fetch_on_closed_connection_raises(self):
        conn = self._cluster_conn()
        from repro.sql import parse

        cursor = conn.execute_cursor(parse("SELECT k FROM w")[0], batch_size=5)
        conn.closed = True
        with pytest.raises(NodeUnavailable):
            cursor.fetch_batch()


class TestCopyRowsFix:
    def test_closed_connection_raises_before_copy(self):
        cluster = make_cluster(workers=1, shard_count=2)
        conn = cluster.cluster.connect("worker1")
        conn.session.execute("CREATE TABLE c (k int)")
        conn.closed = True
        with pytest.raises(NodeUnavailable):
            conn.copy_rows("c", [[1]])
        # Nothing was copied on the worker.
        other = cluster.cluster.connect("worker1")
        assert other.session.execute("SELECT count(*) FROM c").scalar() == 0

    def test_round_trip_charged_up_front(self):
        cluster = make_cluster(workers=1, shard_count=2)
        conn = cluster.cluster.connect("worker1")
        conn.session.execute("CREATE TABLE c (k int)")
        trips = conn.round_trips
        elapsed = conn.elapsed
        with pytest.raises(Exception):
            conn.copy_rows("missing_table", [[1], [2]])
        # The wire exchange happened even though the copy failed.
        assert conn.round_trips == trips + 1
        assert conn.elapsed > elapsed


# --------------------------------------------- satellites: parked + affinity


class TestParkedStatementsWithOpenCursors:
    def test_remote_block_parks_while_streams_drain(self, citus):
        s = citus.coordinator_session("writer")
        s.execute("CREATE TABLE t (k int PRIMARY KEY, v int)")
        s.execute("SELECT create_distributed_table('t', 'k')")
        for k in range(1, 41):
            s.execute(f"INSERT INTO t VALUES ({k}, 0)")
        k1, _ = find_keys_on_distinct_nodes(citus, "t")

        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 1 WHERE k = $1", [k1])

        other = citus.coordinator_session("reader")
        # The multi-shard streaming SELECT takes only AccessShare locks and
        # must drain cleanly while the row lock is held elsewhere.
        assert other.execute("SELECT count(*) FROM t").scalar() == 40

        # A conflicting single-task write parks on the remote lock
        # (RemoteBlocked) instead of failing, with cursors having come and
        # gone on the same worker sessions.
        handle = other.execute_async(f"UPDATE t SET v = 2 WHERE k = {k1}")
        assert not handle.done
        # While parked, further streaming statements on the *writer* session
        # (which holds the lock) still work.
        assert s.execute("SELECT count(*) FROM t WHERE v = 1").scalar() == 1
        s.execute("COMMIT")
        citus.pump()
        assert handle.done and handle.error is None
        assert other.execute(
            "SELECT v FROM t WHERE k = $1", [k1]
        ).scalar() == 2

    def test_worker_session_defers_commit_until_cursors_close(self, citus):
        s = citus.coordinator_session()
        s.execute("CREATE TABLE t (k int PRIMARY KEY, v int)")
        s.execute("SELECT create_distributed_table('t', 'k')")
        for k in range(1, 9):
            s.execute(f"INSERT INTO t VALUES ({k}, {k})")
        # Two concurrent portals on one backend: completion only when both
        # have finished.
        worker = citus.cluster.node("worker1")
        ws = worker.connect()
        ws.execute("CREATE TABLE plain (k int)")
        ws.execute("INSERT INTO plain VALUES (1), (2), (3)")
        from repro.sql import parse

        c1 = ws.execute_parsed_cursor(parse("SELECT k FROM plain")[0])
        c2 = ws.execute_parsed_cursor(parse("SELECT k FROM plain")[0])
        assert ws._open_cursors == 2
        while c1.fetch(2):
            pass
        assert ws._open_cursors == 1
        c2.close()
        assert ws._open_cursors == 0


class TestAffinityClearing:
    def test_accessed_groups_cleared_after_streaming_select(self, citus, big):
        from repro.citus.executor.placement import SessionPools

        big.execute("SELECT k FROM events ORDER BY v LIMIT 5")
        pools = SessionPools.for_session(big, citus.coordinator_ext)
        assert all(not c.accessed_groups for c in pools.all_connections())

    def test_accessed_groups_cleared_after_autocommit_write(self, citus, big):
        from repro.citus.executor.placement import SessionPools

        big.execute("UPDATE events SET v = v WHERE k = 1")
        pools = SessionPools.for_session(big, citus.coordinator_ext)
        assert all(not c.accessed_groups for c in pools.all_connections())

    def test_affinity_pins_survive_inside_block(self, citus, big):
        from repro.citus.executor.placement import SessionPools

        big.execute("BEGIN")
        big.execute("UPDATE events SET v = v + 1 WHERE k = 1")
        big.execute("SELECT count(*) FROM events")  # streaming read in txn
        pools = SessionPools.for_session(big, citus.coordinator_ext)
        assert any(c.accessed_groups for c in pools.all_connections())
        big.execute("ROLLBACK")
        big.execute("SELECT count(*) FROM events")
        assert all(not c.accessed_groups for c in pools.all_connections())


# ----------------------------------------------------------- fallback plane


class TestMaterializedFallback:
    def test_disabled_pipeline_uses_execute_tasks(self, citus, big):
        ext = citus.coordinator_ext
        ext.config.enable_streaming_pipeline = False
        try:
            result = big.execute("SELECT k FROM events ORDER BY v LIMIT 5")
            assert len(result.rows) == 5
            report = ext.executor.last_report
            assert report.batches_fetched == 0
            assert report.bytes_streamed == 0
        finally:
            ext.config.enable_streaming_pipeline = True

    def test_streaming_report_fields_default_zero(self, citus, big):
        # Single-task router queries use the blocking path.
        big.execute("SELECT v FROM events WHERE k = 1")
        report = citus.coordinator_ext.executor.last_report
        assert report.rows_buffered_peak == 0
        assert report.early_terminations == 0
