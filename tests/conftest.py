"""Shared fixtures: single-instance engines and Citus clusters."""

from __future__ import annotations

import pytest

from repro import PostgresInstance, make_cluster


@pytest.fixture
def pg():
    """A fresh single PostgreSQL-like instance."""
    return PostgresInstance("pg_test")


@pytest.fixture
def session(pg):
    """A connected session on a fresh instance."""
    return pg.connect()


@pytest.fixture
def citus():
    """A fresh 2-worker Citus cluster with 8 shards per table."""
    return make_cluster(workers=2, shard_count=8)


@pytest.fixture
def citus_session(citus):
    return citus.coordinator_session()


@pytest.fixture
def citus4():
    """A 4-worker cluster for scaling-sensitive tests."""
    return make_cluster(workers=4, shard_count=16)


def find_keys_on_distinct_nodes(citus, table: str, count: int = 2) -> list[int]:
    """Integer distribution-column values that hash to different nodes."""
    from repro.engine.datum import hash_value

    ext = citus.coordinator_ext
    dist = ext.metadata.cache.get_table(table)
    seen_nodes: dict[str, int] = {}
    for key in range(1, 10_000):
        index = dist.shard_index_for_hash(hash_value(key))
        node = ext.metadata.cache.placement_node(dist.shards[index].shardid)
        if node not in seen_nodes:
            seen_nodes[node] = key
        if len(seen_nodes) >= count:
            return list(seen_nodes.values())[:count]
    raise AssertionError("could not find keys on distinct nodes")


def explain_text(session, sql: str, params=None) -> str:
    return "\n".join(r[0] for r in session.execute("EXPLAIN " + sql, params).rows)
