"""Failure injection: node failures at every interesting point in the
distributed protocols (§3.7.2's robustness claims, §3.9's failover)."""

import pytest

from repro.errors import NodeUnavailable, ReproError
from tests.conftest import find_keys_on_distinct_nodes
from repro.net.cluster import StandbyConfig


@pytest.fixture
def s(citus, citus_session):
    s = citus_session
    s.execute("CREATE TABLE t (k int PRIMARY KEY, v int)")
    s.execute("SELECT create_distributed_table('t', 'k')")
    return s


@pytest.fixture
def keys(citus, s):
    k1, k2 = find_keys_on_distinct_nodes(citus, "t")
    s.execute("INSERT INTO t VALUES ($1, 0), ($2, 0)", [k1, k2])
    s.stats.clear()
    return k1, k2


def node_of(citus, table, key):
    from repro.engine.datum import hash_value

    ext = citus.coordinator_ext
    dist = ext.metadata.cache.get_table(table)
    index = dist.shard_index_for_hash(hash_value(key))
    return ext.metadata.cache.placement_node(dist.shards[index].shardid)


class TestQueryTimeFailures:
    def test_read_from_failed_node_errors(self, citus, s, keys):
        k1, _ = keys
        citus.cluster.fail_node(node_of(citus, "t", k1))
        with pytest.raises(ReproError):
            fresh = citus.coordinator_session("fresh")
            fresh.execute("SELECT * FROM t WHERE k = $1", [k1])

    def test_other_shards_still_readable_after_failure(self, citus, s, keys):
        k1, k2 = keys
        citus.cluster.fail_node(node_of(citus, "t", k1))
        fresh = citus.coordinator_session("fresh")
        assert fresh.execute("SELECT v FROM t WHERE k = $1", [k2]).scalar() == 0

    def test_recovered_standby_serves_reads(self, citus, s, keys):
        k1, _ = keys
        node = node_of(citus, "t", k1)
        citus.cluster.enable_standby(node, StandbyConfig(mode="synchronous"))
        citus.cluster.fail_node(node)
        citus.cluster.promote_standby(node)
        citus.coordinator_ext._utility_connections.clear()
        fresh = citus.coordinator_session("fresh")
        assert fresh.execute("SELECT v FROM t WHERE k = $1", [k1]).scalar() == 0


class TestTwoPhaseCommitFailures:
    def test_prepare_failure_aborts_everywhere(self, citus, s, keys):
        """A worker dying before PREPARE: the whole transaction aborts and
        no partial state survives."""
        k1, k2 = keys
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 9 WHERE k = $1", [k1])
        s.execute("UPDATE t SET v = 9 WHERE k = $1", [k2])
        # Kill one participant before COMMIT: its connection dies, so the
        # pre-commit PREPARE on it fails.
        citus.cluster.fail_node(node_of(citus, "t", k2))
        reg = citus.coordinator_ext.stat_counters
        with reg.measure() as m:
            with pytest.raises(ReproError):
                s.execute("COMMIT")
        assert m.value("twopc_prepare_failures") == 1
        assert m.value("twopc_commit_prepared") == 0
        # Revive and check the surviving node rolled back.
        citus.cluster.node(node_of(citus, "t", k2)).restart()
        citus.coordinator_ext._utility_connections.clear()
        fresh = citus.coordinator_session("fresh")
        assert fresh.execute("SELECT v FROM t WHERE k = $1", [k1]).scalar() == 0
        assert fresh.execute("SELECT sum(v) FROM t").scalar() == 0

    def test_crash_between_phases_recovers_to_commit(self, citus, s, keys):
        """Worker restarts after PREPARE but before COMMIT PREPARED: the
        prepared transaction survives the restart (WAL) and the recovery
        daemon completes it from the commit record."""
        k1, k2 = keys
        ext = citus.coordinator_ext
        ext.failpoints["skip_commit_prepared"] = True
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 5 WHERE k = $1", [k1])
        s.execute("UPDATE t SET v = 5 WHERE k = $1", [k2])
        s.execute("COMMIT")
        ext.failpoints.clear()
        victim = node_of(citus, "t", k2)
        citus.cluster.node(victim).crash()
        citus.cluster.node(victim).restart()
        ext._utility_connections.clear()
        assert citus.cluster.node(victim).prepared_txns  # survived restart
        reg = ext.stat_counters
        with reg.measure() as m:
            result = citus.run_maintenance()
        assert result["recovery"]["committed"] >= 1
        # The cluster-wide counters agree with the maintenance report.
        assert m.value("recovery_rounds") >= 1
        assert m.value("recovery_committed") == result["recovery"]["committed"]
        assert m.value("recovery_committed", node=victim) >= 1
        assert m.value("recovery_aborted") == 0
        fresh = citus.coordinator_session("fresh")
        assert fresh.execute("SELECT sum(v) FROM t").scalar() == 10

    def test_recovery_skips_down_nodes_and_finishes_later(self, citus, s, keys):
        k1, k2 = keys
        ext = citus.coordinator_ext
        ext.failpoints["skip_commit_prepared"] = True
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 3 WHERE k = $1", [k1])
        s.execute("UPDATE t SET v = 3 WHERE k = $1", [k2])
        s.execute("COMMIT")
        ext.failpoints.clear()
        down = node_of(citus, "t", k2)
        up = node_of(citus, "t", k1)
        citus.cluster.fail_node(down)
        reg = ext.stat_counters
        # First pass: only the live node's prepared txn resolves.
        with reg.measure() as m1:
            first = citus.run_maintenance()["recovery"]
        assert first["committed"] == 1
        assert m1.value("recovery_committed", node=up) == 1
        assert m1.value("recovery_committed", node=down) == 0
        citus.cluster.node(down).restart()
        ext._utility_connections.clear()
        with reg.measure() as m2:
            second = citus.run_maintenance()["recovery"]
        assert second["committed"] == 1
        assert m2.value("recovery_committed", node=down) == 1
        fresh = citus.coordinator_session("fresh")
        assert fresh.execute("SELECT sum(v) FROM t").scalar() == 6


class TestConnectionFailures:
    def test_closed_remote_connection_recreated(self, citus, s, keys):
        from repro.citus.executor.placement import SessionPools

        k1, _ = keys
        pools = SessionPools.for_session(s, citus.coordinator_ext)
        for conn in pools.all_connections():
            conn.close()
        # Next statement transparently opens fresh connections.
        assert s.execute("SELECT v FROM t WHERE k = $1", [k1]).scalar() == 0

    def test_utility_connection_recreated_after_failover(self, citus, s, keys):
        ext = citus.coordinator_ext
        node = citus.worker_names()[0]
        citus.cluster.enable_standby(node)
        citus.cluster.fail_node(node)
        citus.cluster.promote_standby(node)
        # worker_connection must detect the stale instance and reconnect.
        conn = ext.worker_connection(node)
        assert conn.session.instance is citus.cluster.node(node)
