"""Figure 9 — distributed transaction (2PC) overhead benchmark (§4.1.1).

pgbench-style two-update transactions with the same vs. different keys,
functionally verified (invariant holds, 2PC count matches expectation)
and modeled at the paper's 250-connection scale.
"""

import pytest

from repro.perf import model
from repro.workloads import pgbench

from .common import make_setup, paper_vs_model_table, write_report

MINI = pgbench.PgbenchConfig(rows=60)
TXNS = 40


def run_pgbench(label: str, same_key: bool):
    session, distributed = make_setup(label)
    pgbench.create_schema(session, distributed=distributed)
    pgbench.load_data(session, MINI)
    session.stats.clear()
    driver = pgbench.PgbenchDriver(session, MINI, same_key=same_key)
    driver.run(TXNS)
    assert pgbench.invariant_sum(session) == 0
    return session


@pytest.mark.parametrize("label", ["Citus 0+1", "Citus 4+1", "Citus 8+1"])
@pytest.mark.parametrize("same_key", [True, False], ids=["same-key", "diff-keys"])
def bench_fig9_two_update_txn(benchmark, label, same_key):
    benchmark.group = "fig9-2pc"
    session = benchmark.pedantic(
        run_pgbench, args=(label, same_key), rounds=2, iterations=1
    )
    if same_key:
        assert session.stats.get("citus_2pc_commits", 0) == 0
    elif label != "Citus 0+1":
        assert session.stats.get("citus_2pc_commits", 0) > 0


def bench_fig9_model_report(benchmark):
    benchmark.group = "fig9-2pc"
    rows = benchmark.pedantic(model.figure9, rounds=1, iterations=1)
    text = paper_vs_model_table(
        "Figure 9: two-update transactions, same vs different keys — TPS",
        [
            "2PC (different keys) incurs a 20-30% throughput penalty",
            "Both variants scale with the number of worker nodes",
            "On a single node both keys are always co-located: no penalty",
        ],
        rows, "TPS", "txns/s",
    )
    pairs = {}
    for row in rows:
        name, kind = row.setup.rsplit(" (", 1)
        pairs.setdefault(name, {})[kind.rstrip(")")] = row.value
    text += "\n\n2PC penalty by cluster size:"
    for name, modes in pairs.items():
        penalty = 1 - modes["different keys"] / modes["same key"]
        text += f"\n  {name}: {penalty * 100:.1f}%"
        if name != "Citus 0+1":
            assert 0.15 <= penalty <= 0.40
    write_report("fig9_2pc", text)
