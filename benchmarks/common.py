"""Shared benchmark machinery.

Every figure's bench does two things:

1. **Functional micro-run** — executes the workload end-to-end at reduced
   scale through the real code path on each cluster shape, timed with
   pytest-benchmark. This is regression tracking for the simulator itself
   and proof the code path works.
2. **Calibrated model report** — evaluates :mod:`repro.perf.model` at the
   paper's scale and writes a paper-vs-reproduction table to
   ``benchmarks/results/<figure>.txt`` (also printed). EXPERIMENTS.md is
   assembled from these.
"""

from __future__ import annotations

import os

from repro import PostgresInstance, make_cluster

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# The four benchmark configurations of §4, at simulator scale. A "setup"
# is (label, factory) where factory() returns a connected session.
MINI_WORKERS = {"PostgreSQL": None, "Citus 0+1": 0, "Citus 4+1": 4, "Citus 8+1": 8}


def make_setup(label: str, shard_count: int = 8, max_connections: int = 2000):
    """Session factory for one of the paper's four configurations."""
    workers = MINI_WORKERS[label]
    if workers is None:
        return PostgresInstance("pg", max_connections=max_connections).connect(), False
    cluster = make_cluster(workers=workers, shard_count=shard_count,
                           max_connections=max_connections)
    return cluster.coordinator_session(), True


def write_report(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print("\n" + text)
    return path


def paper_vs_model_table(title: str, paper_claims: list[str], rows,
                         metric: str, unit: str,
                         higher_is_better: bool = True) -> str:
    from repro.perf import model

    lines = [f"== {title} ==", ""]
    lines.append("Paper's qualitative claims:")
    for claim in paper_claims:
        lines.append(f"  - {claim}")
    lines.append("")
    lines.append("Model at paper scale:")
    lines.append(model.format_table(rows, metric, unit))
    if any(r.setup.startswith("PostgreSQL") for r in rows):
        speedups = model.speedup_over_postgres(rows, higher_is_better)
        lines.append("")
        lines.append("Relative to single PostgreSQL: " + ", ".join(
            f"{name} = {value:.2f}x" for name, value in speedups.items()
        ))
    return "\n".join(lines)
