"""Plan-quality regression gate: per-query chosen tier + cost ratio.

Plans the workload query suites (YCSB, TPC-C, TPC-H, gharchive) through
``citus_plan_alternatives()`` — the candidate-plan pipeline — and records,
per query fingerprint, which cascade tier the planner chose, its estimated
cost, and the cost ratio against the best alternative it considered. The
records are diffed against a checked-in baseline so a planner refactor
cannot silently demote a query down the cascade (fast_path → router →
pushdown → join_order) or pick a strictly worse join strategy.

Failure conditions against the baseline:

- the query-key sets differ (a suite query stopped planning, or the
  baseline is stale);
- a query's chosen tier moved *down* the cascade (rank in
  ``TIER_RANK``), or changed at all for non-cascade tiers;
- chosen cost grew by more than 25%;
- cost ratio (chosen / best considered) grew by more than 0.05 — the
  planner started leaving a better candidate on the table.

Usage::

    PYTHONPATH=src python benchmarks/bench_plan_quality.py
        [--quick] [--out results.json]
        [--baseline benchmarks/results/bench_plan_quality_baseline.json]
        [--update-baseline] [--self-test]

``--self-test`` proves the gate has teeth: it disables the fast-path tier
via ``citus.planner_disabled_tiers``, re-plans every suite, and exits 0
only if the gate *fails* on the forced tier downgrades.

The data sizes are fixed and deterministic (seeded generators), so the
join-order network-byte estimates — and therefore the recorded costs —
are reproducible across runs; ``--quick`` is accepted for CI-command
symmetry with the other benchmarks and changes nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import make_cluster  # noqa: E402
from repro.citus.planner.pipeline import TIER_RANK  # noqa: E402
from repro.workloads import gharchive, tpcc, tpch, ycsb  # noqa: E402

#: Chosen cost may grow by at most this factor before the gate fails.
COST_TOLERANCE = 1.25
#: Cost ratio (chosen / best considered) may grow by at most this much.
RATIO_TOLERANCE = 0.05

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(__file__), "results", "bench_plan_quality_baseline.json"
)


# -------------------------------------------------------------- suites

def _new_cluster():
    return make_cluster(workers=2, shard_count=8, max_connections=2000)


def _ycsb_suite():
    cluster = _new_cluster()
    session = cluster.coordinator_session()
    ycsb.create_schema(session)
    ycsb.load_data(session, ycsb.YcsbConfig(records=200, seed=7))
    # A second distributed table joined off its distribution column gives
    # the suite a guaranteed join-order (repartition vs broadcast) query.
    session.execute("CREATE TABLE ycsb_tags (tag_key text, ref_key text)")
    session.execute("SELECT create_distributed_table('ycsb_tags', 'tag_key')")
    rows = [[f"tag-{i:04d}", ycsb.key_name(i % 200)] for i in range(100)]
    session.copy_rows("ycsb_tags", rows, ["tag_key", "ref_key"])
    key = ycsb.key_name(17)
    queries = {
        "point_read": f"SELECT * FROM usertable WHERE ycsb_key = '{key}'",
        "point_update": (
            f"UPDATE usertable SET field0 = 'updated' WHERE ycsb_key = '{key}'"
        ),
        "scan_count": "SELECT count(*) FROM usertable",
        "tag_join": (
            "SELECT count(*) FROM usertable u"
            " JOIN ycsb_tags t ON u.ycsb_key = t.ref_key"
        ),
    }
    return cluster, session, queries


def _tpcc_suite():
    cluster = _new_cluster()
    session = cluster.coordinator_session()
    tpcc.create_schema(session)
    tpcc.load_data(session, tpcc.TpccConfig(warehouses=2, items=20))
    queries = {
        "item_price": "SELECT i_price FROM items WHERE i_id = 5",
        "warehouse_read": "SELECT * FROM warehouse WHERE w_id = 1",
        "order_join": (
            "SELECT count(*) FROM orders o"
            " JOIN order_line l ON o.o_w_id = l.ol_w_id WHERE o.o_w_id = 1"
        ),
        "customer_rollup": (
            "SELECT c_w_id, count(*) FROM customer GROUP BY c_w_id"
        ),
    }
    return cluster, session, queries


def _tpch_suite():
    cluster = _new_cluster()
    session = cluster.coordinator_session()
    tpch.create_schema(session)
    tpch.load_data(session, tpch.TpchConfig())
    queries = {name: sql for name, sql in sorted(tpch.QUERIES.items())}
    return cluster, session, queries


def _gharchive_suite():
    cluster = _new_cluster()
    session = cluster.coordinator_session()
    gharchive.create_schema(session)
    gharchive.load_events(session, gharchive.ArchiveConfig(events=100))
    queries = {
        "dashboard": gharchive.DASHBOARD_QUERY,
        "rollup_transform": gharchive.TRANSFORM_QUERY,
        "event_count": "SELECT count(*) FROM github_events",
    }
    return cluster, session, queries


SUITES = (
    ("ycsb", _ycsb_suite),
    ("tpcc", _tpcc_suite),
    ("tpch", _tpch_suite),
    ("gharchive", _gharchive_suite),
)


# ------------------------------------------------------------ planning

def _plan_record(session, sql: str) -> dict:
    raw = session.execute(
        "SELECT citus_plan_alternatives($1)", [sql]
    ).rows[0][0]
    search = json.loads(raw)
    if search.get("error"):
        return {"tier": "unsupported", "error": search["error"]}
    chosen = next(
        c for c in search["candidates"] if c["status"] == "chosen"
    )
    return {
        "tier": search["chosen_tier"],
        "detail": chosen["detail"],
        "cost": search["chosen_cost"],
        "cost_ratio": search["cost_ratio"],
        "task_count": chosen["attrs"].get("tasks"),
        "candidates": len(search["candidates"]),
    }


def build_suites():
    return [(name, *fn()) for name, fn in SUITES]


def collect(built) -> dict:
    records = {}
    for name, _cluster, session, queries in built:
        for qname, sql in queries.items():
            records[f"{name}.{qname}"] = _plan_record(session, sql)
    return records


# ---------------------------------------------------------------- gate

def compare(baseline: dict, current: dict) -> list[str]:
    failures = []
    missing = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    if missing:
        failures.append(f"queries missing from this run: {', '.join(missing)}")
    if added:
        failures.append(
            f"queries not in the baseline (run --update-baseline):"
            f" {', '.join(added)}"
        )
    for key in sorted(set(baseline) & set(current)):
        base, cur = baseline[key], current[key]
        if cur["tier"] != base["tier"]:
            base_rank = TIER_RANK.get(base["tier"])
            cur_rank = TIER_RANK.get(cur["tier"])
            if base_rank is not None and cur_rank is not None \
                    and cur_rank > base_rank:
                failures.append(
                    f"{key}: tier downgraded {base['tier']} -> {cur['tier']}"
                )
            else:
                failures.append(
                    f"{key}: tier changed {base['tier']} -> {cur['tier']}"
                )
            continue
        base_cost, cur_cost = base.get("cost"), cur.get("cost")
        if base_cost and cur_cost and cur_cost > base_cost * COST_TOLERANCE:
            failures.append(
                f"{key}: cost {cur_cost:.0f} exceeds baseline"
                f" {base_cost:.0f} by more than {COST_TOLERANCE:.0%}"
            )
        base_ratio, cur_ratio = base.get("cost_ratio"), cur.get("cost_ratio")
        if base_ratio is not None and cur_ratio is not None \
                and cur_ratio > base_ratio + RATIO_TOLERANCE:
            failures.append(
                f"{key}: cost ratio {cur_ratio:.3f} regressed past baseline"
                f" {base_ratio:.3f} + {RATIO_TOLERANCE}"
            )
    return failures


def _self_test(built, baseline: dict) -> int:
    """Force a tier downgrade and verify the gate catches it."""
    for _name, cluster, _session, _queries in built:
        cluster.coordinator_ext.config.planner_disabled_tiers = "fast_path"
    downgraded = collect(built)
    failures = compare(baseline, downgraded)
    downgrades = [f for f in failures if "downgraded" in f]
    for _name, cluster, _session, _queries in built:
        cluster.coordinator_ext.config.planner_disabled_tiers = ""
    if not downgrades:
        print("SELF-TEST FAIL: disabling fast_path produced no tier-downgrade"
              " failure — the gate is toothless")
        return 1
    print(f"self-test: gate caught {len(downgrades)} forced downgrade(s), e.g.")
    print(f"  {downgrades[0]}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="accepted for CI symmetry; sizes are fixed")
    parser.add_argument("--out", help="write plan records JSON to this path")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline JSON to gate against")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate fails when fast_path is"
                        " force-disabled")
    args = parser.parse_args(argv)

    built = build_suites()
    records = collect(built)
    for key in sorted(records):
        r = records[key]
        if r["tier"] == "unsupported":
            print(f"{key:>28}: unsupported")
            continue
        ratio = r["cost_ratio"]
        print(f"{key:>28}: {r['tier']:<12} cost={r['cost']:>10.0f}"
              f"  ratio={ratio:.3f}" if ratio is not None else
              f"{key:>28}: {r['tier']:<12} cost={r['cost']:>10.0f}")

    if args.update_baseline:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w") as f:
            json.dump(records, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote baseline {args.baseline}")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)
    failures = compare(baseline, records)

    if args.out:
        report = {"records": records, "failures": failures}
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
        print(f"wrote {args.out}")

    if failures:
        print(f"FAIL: {len(failures)} plan-quality regression(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"OK: {len(records)} query plans match the baseline")

    if args.self_test:
        return _self_test(built, baseline)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
