"""Figure 8 — TPC-H data warehousing benchmark (§4.4).

Runs the supported query set over one session on each setup (reduced
scale) and reports the model's queries-per-hour at SF100.
"""

import pytest

from repro.perf import model
from repro.workloads import tpch

from .common import make_setup, paper_vs_model_table, write_report

MINI = tpch.TpchConfig(orders=60)
SETUPS = ["PostgreSQL", "Citus 0+1", "Citus 4+1", "Citus 8+1"]


def build(label):
    session, distributed = make_setup(label)
    tpch.create_schema(session, distributed=distributed)
    tpch.load_data(session, MINI)
    return session


@pytest.mark.parametrize("label", SETUPS)
def bench_fig8_query_set_functional(benchmark, label):
    benchmark.group = "fig8-tpch"
    session = build(label)

    def full_set():
        return tpch.run_query_set(session)

    results = benchmark.pedantic(full_set, rounds=2, iterations=1)
    assert set(results) == set(tpch.QUERIES)


@pytest.mark.parametrize("name", list(tpch.QUERIES))
def bench_fig8_per_query_citus(benchmark, name):
    """Per-query timing on Citus 4+1 (regression tracking per query)."""
    benchmark.group = "fig8-tpch-queries"
    session = build("Citus 4+1")
    benchmark.pedantic(
        lambda: session.execute(tpch.QUERIES[name]).rows, rounds=2, iterations=1
    )


def bench_fig8_model_report(benchmark):
    benchmark.group = "fig8-tpch"
    rows = benchmark.pedantic(model.figure8, rounds=1, iterations=1)
    text = paper_vs_model_table(
        "Figure 8: TPC-H scale factor 100 (~135GB) — queries per hour",
        [
            "Single PostgreSQL is I/O + single-core bound (tables exceed memory)",
            "Citus wins through distributed parallelism and memory fit",
            "Two orders of magnitude speedup on the 8-node cluster",
        ],
        rows, "QPH", "queries/h",
    )
    text += (
        "\n\nSupported queries: "
        + ", ".join(sorted(tpch.QUERIES))
        + f"\nUnsupported ({len(tpch.UNSUPPORTED_QUERIES)}):"
    )
    for name, reason in sorted(tpch.UNSUPPORTED_QUERIES.items()):
        text += f"\n  {name}: {reason}"
    write_report("fig8_tpch", text)
    by = {r.setup: r.value for r in rows}
    assert by["Citus 8+1"] / by["PostgreSQL"] >= 80
