"""Figure 7 — real-time analytics microbenchmarks (§4.2).

(a) single-session COPY with a GIN index, (b) dashboard query over jsonb,
(c) INSERT..SELECT transformation — run functionally at reduced scale on
each setup, plus the model report at the paper's ~100 GB scale.
"""

import pytest

from repro.perf import model
from repro.workloads import gharchive

from .common import make_setup, paper_vs_model_table, write_report

MINI = gharchive.ArchiveConfig(events=200)
SETUPS = ["PostgreSQL", "Citus 0+1", "Citus 4+1", "Citus 8+1"]


def build(label):
    session, distributed = make_setup(label)
    gharchive.create_schema(session, distributed=distributed)
    return session


def run_copy(label):
    session = build(label)
    loaded = gharchive.load_events(session, MINI)
    assert loaded == MINI.events
    return session


@pytest.mark.parametrize("label", SETUPS)
def bench_fig7a_copy_functional(benchmark, label):
    benchmark.group = "fig7a-copy"
    benchmark.pedantic(run_copy, args=(label,), rounds=2, iterations=1)


@pytest.mark.parametrize("label", SETUPS)
def bench_fig7b_dashboard_functional(benchmark, label):
    benchmark.group = "fig7b-dashboard"
    session = run_copy(label)
    expected = gharchive.expected_postgres_mentions(MINI)

    def dashboard():
        rows = session.execute(gharchive.DASHBOARD_QUERY).rows
        assert sum(r[1] for r in rows) == expected
        return rows

    benchmark.pedantic(dashboard, rounds=3, iterations=1)


@pytest.mark.parametrize("label", SETUPS)
def bench_fig7c_insert_select_functional(benchmark, label):
    benchmark.group = "fig7c-insert-select"
    session = run_copy(label)

    def transform():
        session.execute("TRUNCATE TABLE commits")
        result = session.execute(gharchive.TRANSFORM_QUERY)
        assert result.rowcount > 0
        return result.rowcount

    benchmark.pedantic(transform, rounds=2, iterations=1)


def bench_fig7_model_report(benchmark):
    benchmark.group = "fig7-model"
    figures = benchmark.pedantic(model.figure7, rounds=1, iterations=1)
    sections = []
    sections.append(paper_vs_model_table(
        "Figure 7(a): single-session COPY of 4.4GB JSON with GIN index — seconds",
        [
            "Citus 0+1 beats PostgreSQL via per-shard parallel index maintenance",
            "Citus 4+1 is faster still; 8+1 adds nothing (coordinator core bound)",
        ],
        figures["copy"], "duration", "s", higher_is_better=False,
    ))
    sections.append(paper_vs_model_table(
        "Figure 7(b): dashboard query (jsonb + trigram search) — seconds",
        [
            "In-memory and CPU bound: parallelism helps even on one server",
            "Runtime halves from 4+1 to 8+1",
        ],
        figures["dashboard"], "duration", "s", higher_is_better=False,
    ))
    sections.append(paper_vs_model_table(
        "Figure 7(c): INSERT..SELECT transformation — seconds",
        ["96% runtime reduction on Citus 8+1 vs single PostgreSQL"],
        figures["insert_select"], "duration", "s", higher_is_better=False,
    ))
    text = "\n\n".join(sections)
    write_report("fig7_realtime", text)
    copy = {r.setup: r.value for r in figures["copy"]}
    assert copy["Citus 0+1"] < copy["PostgreSQL"]
    assert copy["Citus 8+1"] == pytest.approx(copy["Citus 4+1"])
    ins = {r.setup: r.value for r in figures["insert_select"]}
    assert 1 - ins["Citus 8+1"] / ins["PostgreSQL"] >= 0.93
