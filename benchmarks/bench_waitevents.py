"""Wait-event instrumentation overhead benchmark.

Runs the fast-path CRUD loop (the same workload as ``bench_hotpath``)
under two introspection modes on identical fresh clusters:

- **off** — ``citus.enable_introspection`` disabled: every node's
  ``wait_registry`` and ``tenant_stats`` are None, so the engine skips
  wait-event and tenant accounting;
- **on** — full wait-event accounting, per-statement activity tracking,
  and tenant attribution (the default).

Tracing is detached in *both* modes so this measures the introspection
layer alone. The CI gate: the instrumented mode must stay within 5% of
the uninstrumented one, judged by the median of per-round on/off
throughput ratios (modes timed back-to-back per round, GC parked) so a
noisy CI box cannot fail the gate on a scheduler hiccup.

Usage::

    PYTHONPATH=src python benchmarks/bench_waitevents.py [--quick]
        [--out results.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import make_cluster  # noqa: E402

#: Maximum allowed throughput loss with introspection enabled
#: (overridable for CI tuning, like bench_hotpath's REGRESSION_FLOOR).
ENABLED_BUDGET = float(os.environ.get("WAITEVENT_BUDGET", "0.05"))

#: Independently allocated clusters per mode, rotated across rounds.
_CLUSTERS_PER_MODE = 3


def _setup(mode: str):
    cluster = make_cluster(workers=2, shard_count=8, max_connections=2000)
    session = cluster.coordinator_session()
    session.execute(
        "CREATE TABLE accounts (key int PRIMARY KEY, v int, filler text)"
    )
    session.execute("SELECT create_distributed_table('accounts', 'key')")
    session.copy_rows(
        "accounts", [[k, 0, f"filler-{k}"] for k in range(1, 201)],
        ["key", "v", "filler"],
    )
    # Detach tracing everywhere: this benchmark isolates the wait-event /
    # tenant accounting cost, not span collection (bench_tracing covers it).
    for ext in cluster.extensions.values():
        ext.tracer = None
    for node in cluster.cluster.nodes.values():
        node.tracer = None
    if mode == "off":
        session.execute(
            "SELECT citus_set_config('enable_introspection', :v)", {"v": False}
        )
    elif mode != "on":
        raise ValueError(mode)
    return cluster, session


def _crud_loop(session, iterations: int) -> float:
    """The fast-path workload; returns statements/sec."""
    select_sql = "SELECT v FROM accounts WHERE key = :key"
    update_sql = "UPDATE accounts SET v = v + :d WHERE key = :key"
    start = time.perf_counter()
    for i in range(iterations):
        key = (i % 200) + 1
        session.execute(select_sql, {"key": key})
        session.execute(update_sql, {"d": 1, "key": key})
    return iterations * 2 / (time.perf_counter() - start)


def _measure_rounds(setups, modes, iterations, trials, rates) -> list:
    """Run ``trials`` interleaved rounds (rotating the cluster pair, both
    modes timed back-to-back in alternating order, GC parked); returns
    per-round overhead ratios and appends per-mode rates into ``rates``."""
    overheads = []
    gc_was_enabled = gc.isenabled()
    try:
        for trial in range(trials):
            order = modes if trial % 2 == 0 else modes[::-1]
            pair = trial % _CLUSTERS_PER_MODE
            rate = {}
            for mode in order:
                gc.collect()
                gc.disable()
                rate[mode] = _crud_loop(setups[mode][pair][1], iterations)
                if gc_was_enabled:
                    gc.enable()
            overheads.append(1.0 - rate["on"] / rate["off"])
            for mode in modes:
                rates[mode].append(rate[mode])
    finally:
        if gc_was_enabled:
            gc.enable()
    return overheads


def run(quick: bool = False) -> dict:
    # Many short rounds beat few long ones: contention bursts on a shared
    # box last longer than one loop, so the per-round ratio carries ~5%
    # noise regardless of round length — only the round count shrinks the
    # median's standard error.
    iterations = 400 if quick else 1000
    trials = 25 if quick else 31
    modes = ("off", "on")
    # Several independently allocated clusters per mode, rotated across
    # rounds: two "identical" clusters can differ by a persistent few
    # percent from allocation/layout luck alone, and a single unlucky
    # pair would bias every round the same way.
    setups = {mode: [_setup(mode) for _ in range(_CLUSTERS_PER_MODE)]
              for mode in modes}
    for mode in modes:
        for setup in setups[mode]:
            _crud_loop(setup[1], max(iterations // 5, 20))
    # The gate is the *median of per-round on/off ratios*, with the two
    # modes timed back-to-back (alternating order) inside each round and
    # the garbage collector parked during timing. Machine noise — a GC
    # pause, a scheduler hiccup, a slow period on a shared CI box — hits
    # both halves of a round about equally, so the per-round ratio stays
    # honest, and the median discards the rounds where it didn't. When
    # the first measurement still lands over budget, one confirmation
    # pass re-measures before failing: a real regression fails twice, a
    # biased host window rarely does.
    rates = {mode: [] for mode in modes}
    overheads = _measure_rounds(setups, modes, iterations, trials, rates)
    overhead = statistics.median(overheads)
    confirmed = False
    if overhead > ENABLED_BUDGET:
        print(f"over budget at {overhead * 100:+.2f}%;"
              " running confirmation pass")
        overheads += _measure_rounds(setups, modes, iterations, trials, rates)
        overhead = statistics.median(overheads)
        confirmed = True
    results = {}
    for mode in modes:
        best = max(rates[mode])
        results[mode] = {"mode": mode, "stmts_per_sec": best}
        print(f"{mode:>3}: {best:>10.1f} stmts/sec (best of {len(rates[mode])})")
    print(f"introspection overhead: {overhead * 100:+6.2f}%"
          f" (budget {ENABLED_BUDGET * 100:.0f}%)")
    # Sanity: the instrumented cluster really did account wait events.
    from repro.engine.stats import stats_for
    from repro.engine.waitevents import wait_totals

    for cluster, _ in setups["on"]:
        totals = wait_totals(stats_for(cluster.cluster))
        if not totals:
            raise AssertionError("instrumented run recorded no wait events")
    return {
        "config": {"iterations": iterations, "trials": trials, "quick": quick},
        "results": results,
        "overhead": overhead,
        "round_overheads": overheads,
        "confirmation_pass": confirmed,
        "wait_event_kinds": len(totals),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke)")
    parser.add_argument("--out", help="write results JSON to this path")
    args = parser.parse_args(argv)

    report = run(quick=args.quick)

    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2)
        print(f"wrote {args.out}")

    if report["overhead"] > ENABLED_BUDGET:
        print(f"FAIL: introspection overhead exceeds {ENABLED_BUDGET * 100:.0f}%")
        return 1
    print("OK: introspection overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
