"""Streaming data-plane benchmark: the pull-based tuple pipeline vs. the
materializing fallback, through the real planner + executor code path.

Three query shapes, chosen to exercise the three coordinator merge
strategies of the streaming pipeline:

- **limit_scan** — ``SELECT … LIMIT k`` without ORDER BY: the streaming
  plane dispatches tasks lazily, stops at the first satisfied batch, and
  skips the remaining shards entirely (plus the worker-side lazy heap
  scan stops after k tuples);
- **order_by_limit** — ``SELECT … ORDER BY col LIMIT k``: k-way
  merge-append over per-shard sorted streams, draining one batch per
  stream instead of materializing every shard's full result;
- **full_scan_order** — un-limited ``ORDER BY`` over the whole table:
  throughput parity check (streaming must not slow the drain-everything
  case down), plus the bounded-buffer guarantee.

Each shape runs twice — ``citus.enable_streaming_pipeline`` on and off
(toggled directly on the extension config) — and reports both
throughputs and the speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming.py [--quick]
        [--out results.json] [--baseline baseline.json]

``--baseline`` compares limit_scan streaming throughput against a
checked-in baseline JSON and exits non-zero on a >30% regression, and
independently fails if ``rows_buffered_peak`` for the order_by_limit
shape exceeds the batch_size × shard_count ceiling (the CI smoke job).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import make_cluster  # noqa: E402

#: Fraction of baseline limit_scan throughput below which --baseline fails.
REGRESSION_FLOOR = 0.70

ROWS = 10_000
SHARDS = 8


def _setup():
    cluster = make_cluster(workers=2, shard_count=SHARDS,
                           max_connections=2000)
    session = cluster.coordinator_session()
    session.execute(
        "CREATE TABLE events (k int PRIMARY KEY, v int, label text)"
    )
    session.execute("SELECT create_distributed_table('events', 'k')")
    rows = [[k, k % 500, f"label-{k}"] for k in range(1, ROWS + 1)]
    session.copy_rows("events", rows, ["k", "v", "label"])
    return cluster, session


QUERIES = {
    "limit_scan": "SELECT k, v FROM events LIMIT 10",
    "order_by_limit": "SELECT k, v FROM events ORDER BY v, k LIMIT 10",
    "full_scan_order": "SELECT k FROM events ORDER BY v",
}


def _bench_query(session, sql: str, iterations: int) -> dict:
    session.execute(sql)  # warm-up: parse + plan cache
    start = time.perf_counter()
    for _ in range(iterations):
        session.execute(sql)
    elapsed = time.perf_counter() - start
    return {"statements": iterations, "seconds": elapsed,
            "stmts_per_sec": iterations / elapsed}


def run(quick: bool = False) -> dict:
    iters = {
        "limit_scan": 50 if quick else 200,
        "order_by_limit": 50 if quick else 200,
        "full_scan_order": 10 if quick else 40,
    }
    cluster, session = _setup()
    ext = cluster.coordinator_ext
    results: dict = {}
    for name, sql in QUERIES.items():
        ext.config.enable_streaming_pipeline = True
        streaming = _bench_query(session, sql, iters[name])
        report = ext.executor.last_report
        streaming["rows_buffered_peak"] = report.rows_buffered_peak
        streaming["tasks_skipped"] = report.tasks_skipped
        ext.config.enable_streaming_pipeline = False
        materialized = _bench_query(session, sql, iters[name])
        ext.config.enable_streaming_pipeline = True
        results[name] = {
            "streaming": streaming,
            "materialized": materialized,
            "speedup": streaming["stmts_per_sec"] / materialized["stmts_per_sec"],
        }
    return {
        "config": {"workers": 2, "shard_count": SHARDS, "rows": ROWS,
                   "batch_size": ext.config.stream_batch_size,
                   "quick": quick},
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke)")
    parser.add_argument("--out", help="write results JSON to this path")
    parser.add_argument("--baseline",
                        help="baseline JSON; fail on >30%% limit_scan "
                             "regression or unbounded merge buffer")
    args = parser.parse_args(argv)

    report = run(quick=args.quick)
    for name, r in report["results"].items():
        s, m = r["streaming"], r["materialized"]
        print(f"{name:>16}: streaming {s['stmts_per_sec']:>8.1f}"
              f" vs materialized {m['stmts_per_sec']:>8.1f} stmts/sec"
              f"  ({r['speedup']:.2f}x, peak buffer {s['rows_buffered_peak']})")

    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2)
        print(f"wrote {args.out}")

    if args.baseline:
        failed = False
        with open(args.baseline) as f:
            baseline = json.load(f)
        base = baseline["results"]["limit_scan"]["streaming"]["stmts_per_sec"]
        now = report["results"]["limit_scan"]["streaming"]["stmts_per_sec"]
        floor = base * REGRESSION_FLOOR
        print(f"limit_scan (streaming): {now:.1f} vs baseline {base:.1f}"
              f" (floor {floor:.1f})")
        if now < floor:
            print("FAIL: streaming limit_scan throughput regressed >30%")
            failed = True
        ceiling = report["config"]["batch_size"] * SHARDS
        peak = report["results"]["order_by_limit"]["streaming"]["rows_buffered_peak"]
        print(f"order_by_limit peak buffer: {peak} (ceiling {ceiling})")
        if not 0 < peak <= ceiling:
            print("FAIL: coordinator merge buffer exceeded"
                  " batch_size x shard_count")
            failed = True
        if report["results"]["limit_scan"]["speedup"] <= 1.0:
            print("FAIL: streaming no faster than materializing on LIMIT scan")
            failed = True
        if failed:
            return 1
        print("OK: within regression budget, buffer bounded")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
