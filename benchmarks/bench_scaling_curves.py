"""Scaling-curve benches: sweep the calibrated model beyond the paper's
four discrete setups and assert the shape claims as curve properties."""

from repro.perf import sensitivity

from .common import write_report


def bench_scaling_curves_report(benchmark):
    benchmark.group = "scaling-curves"

    def sweep():
        return {
            "tpcc": sensitivity.tpcc_scaling(16),
            "ycsb": sensitivity.ycsb_scaling(16),
            "tpch": sensitivity.tpch_scaling(16),
            "two_pc": sensitivity.two_pc_penalty_vs_cross_fraction(8),
            "memory": sensitivity.memory_fit_crossover(),
        }

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sections = [
        sensitivity.ascii_curve(
            curves["tpcc"], "TPC-C NOPM vs workers (memory-fit jump, then client limit):"
        ),
        sensitivity.ascii_curve(
            curves["ycsb"], "YCSB ops/s vs workers (linear in I/O capacity):"
        ),
        sensitivity.ascii_curve(
            curves["tpch"], "TPC-H QPH vs workers (superlinear until memory fit):"
        ),
        sensitivity.ascii_curve(
            [(f"{f:.1f}", v) for f, v in curves["two_pc"]],
            "Blended TPS vs fraction of 2PC transactions (workers=8):",
        ),
        sensitivity.ascii_curve(
            curves["memory"],
            "TPC-C NOPM at 4+1 vs database size GB (the memory cliff):",
        ),
    ]
    write_report("scaling_curves", "\n\n".join(sections))

    # Shape assertions:
    tpcc = {p.workers: p.value for p in curves["tpcc"]}
    # The memory-fit jump: going from 1 to 4 workers gains far more than 4x.
    assert tpcc[4] / tpcc[1] > 6
    ycsb = {p.workers: p.value for p in curves["ycsb"]}
    # Near-linear while I/O bound:
    assert 1.8 <= ycsb[8] / ycsb[4] <= 2.2
    # 2PC blend decreases monotonically with cross-shard fraction.
    values = [v for _f, v in curves["two_pc"]]
    assert all(a >= b for a, b in zip(values, values[1:]))
    # Memory cliff: NOPM at 25GB (fits) far above 400GB (doesn't).
    memory = curves["memory"]
    assert memory[0][1] > memory[-1][1] * 2
