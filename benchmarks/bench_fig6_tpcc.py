"""Figure 6 — HammerDB TPC-C (multi-tenant workload, §4.1).

Functional micro-run: the TPC-C mix against each cluster shape; model
report: NOPM and response times at the paper's 500-warehouse / 250-vuser
scale.
"""

import pytest

from repro.perf import model
from repro.workloads import tpcc

from .common import make_setup, paper_vs_model_table, write_report

MINI = tpcc.TpccConfig(warehouses=4, items=15)
TXNS = 40


def run_tpcc(label: str) -> tpcc.TpccStats:
    session, distributed = make_setup(label)
    tpcc.create_schema(session, distributed=distributed)
    tpcc.load_data(session, MINI)
    driver = tpcc.TpccDriver(session, MINI)
    stats = driver.run(TXNS)
    assert stats.total == TXNS and stats.aborts == 0
    return stats


@pytest.mark.parametrize("label", ["PostgreSQL", "Citus 0+1", "Citus 4+1", "Citus 8+1"])
def bench_fig6_tpcc_functional(benchmark, label):
    benchmark.group = "fig6-tpcc"
    benchmark.pedantic(run_tpcc, args=(label,), rounds=2, iterations=1)


def bench_fig6_model_report(benchmark):
    benchmark.group = "fig6-tpcc"
    rows = benchmark.pedantic(model.figure6, rounds=1, iterations=1)
    text = paper_vs_model_table(
        "Figure 6: HammerDB TPC-C, 500 warehouses (~100GB), 250 vusers — NOPM",
        [
            "Citus 0+1 slightly slower than PostgreSQL (distributed planning overhead)",
            "Citus 4+1 ≈ 13x PostgreSQL with only 5x hardware (working set fits memory)",
            "4 → 8 nodes scales sublinearly (~7% cross-node transactions keep their latency)",
            "Single server is I/O bottlenecked; clusters become CPU/client bound",
        ],
        rows, "NOPM", "new orders/min",
    )
    write_report("fig6_tpcc", text)
    by = {r.setup: r.value for r in rows}
    assert by["Citus 0+1"] < by["PostgreSQL"]
    assert 10 <= by["Citus 4+1"] / by["PostgreSQL"] <= 16
    assert by["Citus 8+1"] / by["Citus 4+1"] < 2.0
