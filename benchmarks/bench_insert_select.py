"""Streaming write data plane benchmark: pipelined INSERT..SELECT
repartitioning and COPY ingest vs. the materializing write plane.

Two write shapes through the real planner + executor code path:

- **repartition** — a large ``INSERT INTO dest SELECT …`` whose
  destination distribution key is fed by a non-distribution column, so
  every row moves through the coordinator's per-shard COPY channels;
- **copy_ingest** — gharchive-style event ingest (Fig. 7a): one large
  programmatic COPY of JSON event rows into a distributed table.

Each shape runs on a fresh identical cluster with
``citus.enable_streaming_writes`` on and off and reports wall throughput,
simulated (virtual-clock) statement time, and the coordinator's
write-side buffering high-water mark. The acceptance claims:

1. streaming keeps ``copy_channel_peak_rows`` ≤ flush_threshold × shards
   while the materialized plane buffers the entire input;
2. on the repartition shape, streaming is at least as fast end-to-end in
   simulated time: the flushes overlap the distributed SELECT feeding
   them, so the statement costs max(read, write) instead of read + write.
   (Client COPY has no simulated read side to overlap — the sim's client
   rows arrive instantly — so there streaming only has to stay within a
   small wall-time band of the materialized plane.)

Usage::

    PYTHONPATH=src python benchmarks/bench_insert_select.py [--quick]
        [--out results.json] [--baseline baseline.json]

``--baseline`` enforces the CI gate: bounded streaming peak on both
shapes, simulated speedup ≥ 1.0 on repartition, wall throughput within
``WALL_PARITY_FLOOR`` of materialized, and a >30% regression floor
against the checked-in baseline JSON.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import make_cluster  # noqa: E402
from repro.workloads import gharchive  # noqa: E402

#: Fraction of baseline streaming rows/sec below which --baseline fails.
REGRESSION_FLOOR = 0.70
#: Minimum wall-time ratio (materialized / streaming) — streaming must not
#: cost more than ~18% extra wall time on any shape (it is usually at
#: parity; the margin absorbs CI runner noise on sub-second runs).
WALL_PARITY_FLOOR = 0.85

ROWS = 50_000  # acceptance floor: ≥ 50k-row repartition INSERT..SELECT
QUICK_ROWS = 12_000
SHARDS = 8

REPARTITION_SQL = "INSERT INTO dest (id, val) SELECT v, k FROM src"


def _cluster():
    return make_cluster(workers=2, shard_count=SHARDS, max_connections=2000)


def _events(n: int) -> list:
    rows = []
    for i in range(n):
        event_id = hashlib.md5(f"bench-{i}".encode()).hexdigest()
        rows.append([event_id, {
            "type": "PushEvent",
            "created_at": f"2020-01-{i % 7 + 1:02d}T12:00:00",
            "repo": f"org/repo-{i % 97}",
            "payload": {"commits": [{"sha": event_id[:10], "message": "m"}]},
        }])
    return rows


def _measure(cluster, fn) -> dict:
    """Wall + virtual-clock elapsed for one write statement, plus the
    executor's write-side channel report."""
    ext = cluster.coordinator_ext
    clock = ext.cluster.clock
    wall0, sim0 = time.perf_counter(), clock.now()
    rows = fn()
    wall = time.perf_counter() - wall0
    sim = clock.now() - sim0
    report = ext.executor.last_report
    return {
        "rows": rows,
        "wall_seconds": round(wall, 3),
        "rows_per_sec": round(rows / wall, 1),
        "sim_seconds": round(sim, 6),
        "copy_flushes": report.copy_flushes,
        "copy_channel_peak_rows": report.copy_channel_peak_rows,
        "copy_bytes_streamed": report.copy_bytes_streamed,
    }


def _run_repartition(streaming: bool, rows: int) -> dict:
    cluster = _cluster()
    s = cluster.coordinator_session()
    s.execute("CREATE TABLE src (k int PRIMARY KEY, v int, label text)")
    s.execute("SELECT create_distributed_table('src', 'k')")
    s.execute("CREATE TABLE dest (id int, val int)")
    s.execute("SELECT create_distributed_table('dest', 'id')")
    s.copy_rows("src", ([k, k, f"label-{k}"] for k in range(1, rows + 1)),
                ["k", "v", "label"])
    cluster.coordinator_ext.config.enable_streaming_writes = streaming

    def go():
        s.execute(REPARTITION_SQL)
        return rows

    out = _measure(cluster, go)
    assert s.execute("SELECT count(*) FROM dest").scalar() == rows
    return out


def _run_copy_ingest(streaming: bool, rows: int) -> dict:
    cluster = _cluster()
    s = cluster.coordinator_session()
    gharchive.create_schema(s, distributed=True, with_index=False,
                            with_rollup=False)
    events = _events(rows)
    cluster.coordinator_ext.config.enable_streaming_writes = streaming

    def go():
        return s.copy_rows("github_events", events, ["event_id", "data"])

    out = _measure(cluster, go)
    assert s.execute("SELECT count(*) FROM github_events").scalar() == rows
    return out


SHAPES = {
    "repartition": _run_repartition,
    "copy_ingest": _run_copy_ingest,
}


def run(quick: bool = False) -> dict:
    rows = QUICK_ROWS if quick else ROWS
    flush_threshold = _cluster().coordinator_ext.config.copy_flush_threshold
    results: dict = {}
    for name, shape in SHAPES.items():
        shape(True, 1_000)  # warm the process before timing
        streaming = shape(True, rows)
        materialized = shape(False, rows)
        # The materialized plane holds every input row in its per-shard
        # batch dict before dispatch: its peak IS the input size.
        materialized["buffered_rows"] = rows
        results[name] = {
            "streaming": streaming,
            "materialized": materialized,
            "wall_speedup": round(
                materialized["wall_seconds"] / streaming["wall_seconds"], 2),
            "sim_speedup": round(
                materialized["sim_seconds"] / streaming["sim_seconds"], 2),
        }
    return {
        "config": {"workers": 2, "shard_count": SHARDS, "rows": rows,
                   "flush_threshold": flush_threshold, "quick": quick},
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced row count (CI smoke)")
    parser.add_argument("--out", help="write results JSON to this path")
    parser.add_argument("--baseline",
                        help="baseline JSON; fail on >30%% throughput "
                             "regression, unbounded channel peak, or "
                             "streaming slower than materialized")
    args = parser.parse_args(argv)

    report = run(quick=args.quick)
    for name, r in report["results"].items():
        s, m = r["streaming"], r["materialized"]
        print(f"{name:>12}: streaming {s['rows_per_sec']:>9.1f}"
              f" vs materialized {m['rows_per_sec']:>9.1f} rows/sec"
              f"  (wall {r['wall_speedup']:.2f}x, sim {r['sim_speedup']:.2f}x,"
              f" peak {s['copy_channel_peak_rows']}"
              f" vs {m['buffered_rows']} buffered)")

    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2)
        print(f"wrote {args.out}")

    if args.baseline:
        failed = False
        with open(args.baseline) as f:
            baseline = json.load(f)
        ceiling = report["config"]["flush_threshold"] * SHARDS
        for name, r in report["results"].items():
            peak = r["streaming"]["copy_channel_peak_rows"]
            print(f"{name} streaming peak: {peak} (ceiling {ceiling})")
            if not 0 < peak <= ceiling:
                print(f"FAIL: {name} channel peak exceeded"
                      " flush_threshold x shard_count")
                failed = True
            if r["wall_speedup"] < WALL_PARITY_FLOOR:
                print(f"FAIL: {name} streaming wall time more than"
                      f" {1 / WALL_PARITY_FLOOR:.2f}x materialized"
                      f" ({r['wall_speedup']:.2f}x)")
                failed = True
            if name == "repartition" and r["sim_speedup"] < 1.0:
                print(f"FAIL: {name} streaming slower than materialized"
                      f" in simulated time ({r['sim_speedup']:.2f}x) —"
                      " the read/write overlap win is gone")
                failed = True
            base = baseline["results"][name]["streaming"]["rows_per_sec"]
            now = r["streaming"]["rows_per_sec"]
            floor = base * REGRESSION_FLOOR
            print(f"{name} streaming: {now:.1f} vs baseline {base:.1f}"
                  f" rows/sec (floor {floor:.1f})")
            if now < floor:
                print(f"FAIL: {name} streaming throughput regressed >30%")
                failed = True
        if failed:
            return 1
        print("OK: channel peaks bounded, streaming >= materialized,"
              " within regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
