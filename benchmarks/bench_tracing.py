"""Tracing overhead benchmark: what the telemetry layer costs on the
hot path.

Runs the fast-path CRUD loop (the same workload as ``bench_hotpath``)
under three instrumentation modes on identical fresh clusters:

- **detached** — the tracer is removed from every extension and instance
  (``ext.tracer = None``), the true uninstrumented baseline;
- **disabled** — the tracer is attached but ``citus.enable_tracing`` is
  off, measuring the cost of the guard checks alone;
- **enabled** — full span collection, statement stats, and ring buffer.

The budget gates (CI): disabled must stay within 5% of detached, enabled
within 25%. Throughput is best-of-N trials to damp scheduler noise. An
exported Chrome trace from the enabled run is always written next to the
results so a failing CI run can upload it as an artifact for inspection.

Usage::

    PYTHONPATH=src python benchmarks/bench_tracing.py [--quick]
        [--out results.json] [--trace-out trace.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import make_cluster  # noqa: E402

#: Maximum allowed throughput loss vs the detached baseline.
DISABLED_BUDGET = 0.05
ENABLED_BUDGET = 0.25

_DEFAULT_TRACE_OUT = os.path.join(
    os.path.dirname(__file__), "results", "bench_tracing_trace.json"
)


def _setup(mode: str):
    cluster = make_cluster(workers=2, shard_count=8, max_connections=2000)
    session = cluster.coordinator_session()
    session.execute(
        "CREATE TABLE accounts (key int PRIMARY KEY, v int, filler text)"
    )
    session.execute("SELECT create_distributed_table('accounts', 'key')")
    session.copy_rows(
        "accounts", [[k, 0, f"filler-{k}"] for k in range(1, 201)],
        ["key", "v", "filler"],
    )
    if mode == "detached":
        for ext in cluster.extensions.values():
            ext.tracer = None
        for node in cluster.cluster.nodes.values():
            node.tracer = None
    elif mode == "disabled":
        session.execute("SELECT citus_set_config('enable_tracing', :v)", {"v": False})
    elif mode != "enabled":
        raise ValueError(mode)
    return cluster, session


def _crud_loop(session, iterations: int) -> float:
    """The fast-path workload; returns statements/sec."""
    select_sql = "SELECT v FROM accounts WHERE key = :key"
    update_sql = "UPDATE accounts SET v = v + :d WHERE key = :key"
    start = time.perf_counter()
    for i in range(iterations):
        key = (i % 200) + 1
        session.execute(select_sql, {"key": key})
        session.execute(update_sql, {"d": 1, "key": key})
    return iterations * 2 / (time.perf_counter() - start)


def run(quick: bool = False) -> dict:
    iterations = 300 if quick else 1500
    trials = 3 if quick else 5
    modes = ("detached", "disabled", "enabled")
    setups = {mode: _setup(mode) for mode in modes}
    # Warm every mode before any measurement, then interleave the trials
    # round-robin: the first loops in a fresh process run cold (allocator,
    # dict caches), and sequential per-mode runs would bias whichever mode
    # went first. Best-of-N per mode damps the remaining noise.
    for mode in modes:
        _crud_loop(setups[mode][1], max(iterations // 5, 20))
    best = {mode: 0.0 for mode in modes}
    for _ in range(trials):
        for mode in modes:
            best[mode] = max(best[mode], _crud_loop(setups[mode][1], iterations))
    trace = setups["enabled"][0].coordinator_ext.tracer.export_chrome(limit=50)
    results = {}
    for mode in modes:
        results[mode] = {"mode": mode, "stmts_per_sec": best[mode]}
        print(f"{mode:>9}: {best[mode]:>10.1f} stmts/sec")
    base = results["detached"]["stmts_per_sec"]
    overheads = {
        mode: 1.0 - results[mode]["stmts_per_sec"] / base
        for mode in ("disabled", "enabled")
    }
    for mode, budget in (("disabled", DISABLED_BUDGET),
                         ("enabled", ENABLED_BUDGET)):
        print(f"{mode:>9} overhead: {overheads[mode] * 100:+6.2f}%"
              f" (budget {budget * 100:.0f}%)")
    return {
        "config": {"iterations": iterations, "trials": trials, "quick": quick},
        "results": results,
        "overheads": overheads,
        "trace": trace,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke)")
    parser.add_argument("--out", help="write results JSON to this path")
    parser.add_argument("--trace-out", default=_DEFAULT_TRACE_OUT,
                        help="write the enabled-mode Chrome trace here")
    args = parser.parse_args(argv)

    report = run(quick=args.quick)

    trace = report.pop("trace")
    if trace is not None:
        os.makedirs(os.path.dirname(args.trace_out), exist_ok=True)
        with open(args.trace_out, "w") as f:
            json.dump(trace, f, default=str)
        print(f"wrote {args.trace_out} (open in chrome://tracing)")

    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2)
        print(f"wrote {args.out}")

    status = 0
    if report["overheads"]["disabled"] > DISABLED_BUDGET:
        print("FAIL: disabled-tracing overhead exceeds "
              f"{DISABLED_BUDGET * 100:.0f}%")
        status = 1
    if report["overheads"]["enabled"] > ENABLED_BUDGET:
        print("FAIL: enabled-tracing overhead exceeds "
              f"{ENABLED_BUDGET * 100:.0f}%")
        status = 1
    if status == 0:
        print("OK: tracing overhead within budget")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
