"""Closed-loop multi-tenant traffic SLO gate.

Drives ≥ 2,000 concurrent simulated sessions — Zipf tenant skew,
exponential think times, connection churn through the per-node pgbouncer
pools, a YCSB/TPC-C/gharchive workload mix — over the virtual clock of a
4+1 cluster with every worker acting as coordinator, then gates CI on:

1. **Tail-latency SLOs** read from ``citus_stat_statements`` (p99 router
   reads/writes, p95 across all fingerprints, in simulated ms) plus pool
   health (zero client rejections) and a bounded 2PC rate — not
   throughput alone.
2. **Reproducibility**: the whole run repeats from the same seed on a
   fresh cluster and the two SLO reports must serialize byte-for-byte
   identically. Every reported number is virtual-time-derived, so any
   difference means nondeterminism crept into the engine.

Usage::

    PYTHONPATH=src python benchmarks/bench_traffic.py [--quick]
        [--out benchmarks/results/bench_traffic_slo.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import make_cluster  # noqa: E402
from repro.workloads.traffic import (  # noqa: E402
    CounterRule,
    RatioRule,
    TrafficConfig,
    default_slo_spec,
    run_traffic,
)

from common import write_report  # noqa: E402

SESSIONS = 2000  # acceptance floor: ≥ 2,000 concurrent simulated sessions
SHARD_COUNT = 16


def slo_spec(flush_threshold: int):
    """The stock SLOs plus the streaming-write guard on the gharchive
    ingest: coordinator COPY buffering must stay bounded by the per-shard
    channel budget (flush_threshold × shards), so a future PR can't
    silently re-materialize the write path."""
    return default_slo_spec() + [
        CounterRule(
            "gharchive copy channels bounded", "copy_channel_peak_rows",
            flush_threshold * SHARD_COUNT,
        ),
        # End-to-end validation of the TPC-C mix's ~7% cross-warehouse
        # payment target, observed through the transaction co-access
        # graph: payments are the mix's only explicit BEGIN..COMMIT
        # blocks, so the block-transaction counters isolate them. The
        # configured 0.07 loses the ~1/16 of cross-warehouse draws whose
        # two warehouses hash to the same shard group, so the expected
        # multi-group fraction is ≈ 0.065; bound it to [0.03, 0.12].
        RatioRule(
            "tpcc cross-warehouse txn fraction",
            "txngraph_txns_block_multi_group",
            ("txngraph_txns_block",),
            max_ratio=0.12, min_ratio=0.03,
        ),
    ]


def traffic_config(quick: bool) -> TrafficConfig:
    return TrafficConfig(
        sessions=SESSIONS,
        tenants=400,
        zipf_s=1.1,
        seed=31415,
        sim_duration=120.0,
        # The wall-time knob: virtual time is free, transactions are not.
        max_transactions=10_000 if quick else 30_000,
        think="exponential",
        think_mean=2.0,
        ramp_seconds=10.0,
        session_lifetime=(4, 12),
        pool_size=32,
        max_client_conn=4000,
    )


def one_run(config: TrafficConfig) -> dict:
    citus = make_cluster(workers=4, shard_count=SHARD_COUNT, max_connections=4000)
    threshold = citus.coordinator_ext.config.copy_flush_threshold
    report = run_traffic(citus, config, slo_spec(threshold))
    # Graph, window, and ASH dumps ride inside the report, so the
    # byte-for-byte determinism gate also covers the co-access graph, the
    # window ring, and the Active Session History ring (same seed →
    # identical citus_ash() output). The flamegraph carries every sample
    # in aggregated form; the sample count pins the ring size too.
    session = citus.coordinator_session("traffic_graph_dump")
    try:
        report["txn_graph"] = session.execute(
            "SELECT citus_stat_txn_graph('json')").scalar()
        report["windows"] = session.execute(
            "SELECT citus_stat_windows()").scalar()
        report["ash_flamegraph"] = session.execute(
            "SELECT citus_ash('flamegraph')").scalar()
        report["ash_samples"] = len(
            session.execute("SELECT citus_ash()").scalar())
    finally:
        session.close()
    return report


def summarize(report: dict) -> str:
    lines = ["== Closed-loop traffic harness: SLO gate ==", ""]
    totals = report["transactions"]
    lines.append(f"sessions (peak concurrent clients): {report['peak_clients']}")
    lines.append(f"simulated seconds driven: {report['sim_seconds']}")
    lines.append(
        f"transactions: {totals['transactions']}"
        f" (aborted {totals['transactions_aborted']},"
        f" churned sessions {totals['sessions_churned']})"
    )
    lines.append(f"throughput: {report['transactions_per_sim_sec']:.1f} txn/sim-s")
    lines.append(f"per mix: {report['per_mix']}")
    lines.append(
        f"pool: {report['pool']['pool_sessions_opened']} server sessions,"
        f" {report['pool']['pool_session_reuses']} reuses,"
        f" {report['pool']['pool_client_rejections']} client rejections"
    )
    lines.append(f"2PC rate: {report['twopc']['rate']}")
    lines.append("")
    lines.append("SLO rules:")
    for rule in report["slo"]["rules"]:
        observed = rule.get("observed_ms", rule.get("observed",
                            rule.get("observed_ratio")))
        threshold = rule.get("threshold_ms", rule.get("threshold",
                             rule.get("threshold_ratio")))
        verdict = "PASS" if rule["passed"] else "FAIL"
        lines.append(f"  [{verdict}] {rule['rule']}: {observed} (≤ {threshold})")
    ash = report.get("ash")
    if ash is not None:
        lines.append("")
        lines.append(f"ASH diagnostics ({ash['samples']} samples in window):")
        if ash.get("headline"):
            lines.append(f"  {ash['headline']}")
        for wait in ash["top_waits"]:
            lines.append(
                f"  {wait['wait_event_type']}.{wait['wait_event']}:"
                f" {wait['samples']} samples ({wait['pct']}%),"
                f" mostly {wait['top_node']}"
            )
    return "\n".join(lines)


def run(quick: bool = False) -> dict:
    config = traffic_config(quick)
    t0 = time.perf_counter()
    report = one_run(config)
    first_wall = time.perf_counter() - t0
    print(f"first run: {first_wall:.1f}s wall for "
          f"{report['transactions']['transactions']} transactions")

    t0 = time.perf_counter()
    repeat = one_run(config)
    second_wall = time.perf_counter() - t0
    print(f"repeat run: {second_wall:.1f}s wall")

    deterministic = (json.dumps(report, sort_keys=True)
                     == json.dumps(repeat, sort_keys=True))
    gates = {
        "slo_passed": bool(report["slo"]["passed"]),
        "deterministic": deterministic,
        "sessions_concurrent": report["peak_clients"] >= SESSIONS,
    }
    return {
        "config": report["config"],
        "gates": gates,
        "passed": all(gates.values()),
        "report": report,
        # Wall timings are informational only and live OUTSIDE the
        # deterministic report that the byte-for-byte gate compares.
        "wall_seconds": {"first": round(first_wall, 1),
                         "second": round(second_wall, 1)},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced transaction cap (CI smoke)")
    parser.add_argument("--out", help="write the JSON gate report to this path")
    args = parser.parse_args(argv)

    result = run(quick=args.quick)
    write_report("bench_traffic", summarize(result["report"]))

    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as f:
            json.dump(result, f, indent=2)
        print(f"wrote {args.out}")

    for gate, ok in result["gates"].items():
        print(f"gate {gate}: {'OK' if ok else 'FAIL'}")
    if not result["passed"]:
        # Drop the collapsed-stack ASH profile next to the JSON report so
        # CI can upload it as an artifact: the first question on an SLO
        # breach is "what was the cluster waiting on", and this file is
        # the answer in a form flamegraph.pl / speedscope render directly.
        fg_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "results", "bench_traffic_flamegraph.txt")
        os.makedirs(os.path.dirname(fg_path), exist_ok=True)
        with open(fg_path, "w") as f:
            f.write(result["report"].get("ash_flamegraph", "") + "\n")
        print(f"wrote ASH flamegraph to {fg_path}")
        print("FAIL: traffic SLO gate")
        return 1
    print("OK: traffic SLOs met, run reproducible from seed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
