"""Table 2 — the workload-pattern / capability matrix.

A functional probe per capability: each cell the paper marks "Yes" is
exercised through the public API, and the resulting matrix is written to
benchmarks/results/table2_capabilities.txt. This is the "feature probe"
reproduction of Table 2 (Tables 1 and 3 are requirement statements, not
experiments; they are restated in EXPERIMENTS.md).
"""

from repro import make_cluster

from .common import write_report

CAPABILITIES = [
    "Distributed tables",
    "Co-located distributed tables",
    "Reference tables",
    "Local tables",
    "Distributed transactions",
    "Distributed schema changes",
    "Query routing",
    "Parallel, distributed SELECT",
    "Parallel, distributed DML",
    "Co-located distributed joins",
    "Non-co-located distributed joins",
    "Columnar storage",
    "Parallel bulk loading",
    "Connection scaling",
]

# The paper's Table 2 (Yes/Some/blank per workload pattern).
PAPER_MATRIX = {
    "Distributed tables": ("Yes", "Yes", "Yes", "Yes"),
    "Co-located distributed tables": ("Yes", "Yes", "Yes", "Yes"),
    "Reference tables": ("Yes", "Yes", "Yes", "Yes"),
    "Local tables": ("Some", "Some", "", ""),
    "Distributed transactions": ("Yes", "Yes", "Yes", "Yes"),
    "Distributed schema changes": ("Yes", "Yes", "Yes", "Yes"),
    "Query routing": ("Yes", "Yes", "Yes", ""),
    "Parallel, distributed SELECT": ("", "Yes", "", "Yes"),
    "Parallel, distributed DML": ("", "Yes", "", ""),
    "Co-located distributed joins": ("Yes", "Yes", "", "Yes"),
    "Non-co-located distributed joins": ("", "", "", "Yes"),
    "Columnar storage": ("", "Some", "", "Yes"),
    "Parallel bulk loading": ("", "Yes", "", "Yes"),
    "Connection scaling": ("", "", "Yes", ""),
}


def probe_all() -> dict:
    """Exercise every capability; returns {capability: 'OK'/'FAIL: ...'}."""
    citus = make_cluster(workers=2, shard_count=8)
    s = citus.coordinator_session()
    results = {}

    def probe(name, fn):
        try:
            fn()
            results[name] = "OK"
        except Exception as exc:  # pragma: no cover - report, don't crash
            results[name] = f"FAIL: {exc}"

    probe("Distributed tables", lambda: (
        s.execute("CREATE TABLE dt (k int PRIMARY KEY, v int)"),
        s.execute("SELECT create_distributed_table('dt', 'k')"),
        s.execute("INSERT INTO dt VALUES (1, 1)"),
    ))
    probe("Co-located distributed tables", lambda: (
        s.execute("CREATE TABLE ct (k int PRIMARY KEY)"),
        s.execute("SELECT create_distributed_table('ct', 'k', colocate_with := 'dt')"),
    ))
    probe("Reference tables", lambda: (
        s.execute("CREATE TABLE rt (id int PRIMARY KEY, n text)"),
        s.execute("SELECT create_reference_table('rt')"),
        s.execute("INSERT INTO rt VALUES (1, 'x')"),
    ))
    probe("Local tables", lambda: (
        s.execute("CREATE TABLE lt (id int PRIMARY KEY)"),
        s.execute("INSERT INTO lt VALUES (1)"),
        s.execute("SELECT count(*) FROM lt"),
    ))
    probe("Distributed transactions", lambda: (
        s.execute("BEGIN"),
        s.execute("UPDATE dt SET v = 2 WHERE k = 1"),
        s.execute("INSERT INTO dt VALUES (99, 0)"),
        s.execute("COMMIT"),
    ))
    probe("Distributed schema changes", lambda: (
        s.execute("ALTER TABLE dt ADD COLUMN extra text"),
        s.execute("CREATE INDEX dt_v_idx ON dt (v)"),
    ))
    probe("Query routing", lambda: (
        _assert_contains(s, "SELECT * FROM dt WHERE k = 1", "Task Count: 1"),
    ))
    probe("Parallel, distributed SELECT", lambda: (
        _assert_contains(s, "SELECT count(*) FROM dt", "Task Count: 8"),
    ))
    probe("Parallel, distributed DML", lambda: (
        _assert_contains(s, "UPDATE dt SET v = v + 1", "Pushdown (DML)"),
    ))
    probe("Co-located distributed joins", lambda: (
        s.execute("SELECT count(*) FROM dt JOIN ct ON dt.k = ct.k"),
    ))
    probe("Non-co-located distributed joins", lambda: (
        s.execute("CREATE TABLE nc (o int PRIMARY KEY, r int)"),
        s.execute("SELECT create_distributed_table('nc', 'o', colocate_with := 'none')"),
        s.execute("SELECT count(*) FROM dt JOIN nc ON dt.v = nc.o"),
    ))
    probe("Columnar storage", lambda: (
        s.execute("SELECT alter_table_set_access_method('ct', 'columnar')"),
    ))
    probe("Parallel bulk loading", lambda: (
        s.copy_rows("dt", [[i, i] for i in range(100, 160)], ["k", "v"]),
    ))

    def connection_scaling():
        citus.enable_metadata_sync()
        worker = citus.session_on("worker1")
        assert worker.execute("SELECT count(*) FROM dt").scalar() > 0

    probe("Connection scaling", connection_scaling)
    return results


def _assert_contains(s, sql, needle):
    text = "\n".join(r[0] for r in s.execute("EXPLAIN " + sql).rows)
    assert needle in text, text


def bench_table2_capability_matrix(benchmark):
    benchmark.group = "table2"
    results = benchmark.pedantic(probe_all, rounds=1, iterations=1)
    header = f"{'Capability':<34} {'MT':>4} {'RA':>4} {'HC':>4} {'DW':>4}   probe"
    lines = ["== Table 2: capability matrix (paper cells + functional probe) ==",
             "", header, "-" * len(header)]
    for name in CAPABILITIES:
        mt, ra, hc, dw = PAPER_MATRIX[name]
        lines.append(
            f"{name:<34} {mt:>4} {ra:>4} {hc:>4} {dw:>4}   {results[name]}"
        )
    text = "\n".join(lines)
    write_report("table2_capabilities", text)
    assert all(v == "OK" for v in results.values()), results
