"""Hot-path microbenchmark: wall-clock statements/sec through the real
planner + executor code path.

Three loops, chosen to exercise the three layers of the hot-path
acceleration work (plan cache, deparse-free task shipping, compiled
expressions):

- **fast_path** — repeated single-key SELECT / UPDATE with parameters,
  the pgbench-style CRUD loop the paper's fast-path tier exists for;
- **router_txn** — BEGIN / UPDATE / SELECT / COMMIT transactions scoped
  to one shard group;
- **pushdown_agg** — a two-phase aggregation SELECT fanning out to every
  shard and merging partials on the coordinator.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick]
        [--out results.json] [--baseline baseline.json]

``--baseline`` compares the fast_path throughput against a checked-in
baseline JSON and exits non-zero on a >30% regression (the CI smoke job).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import make_cluster  # noqa: E402

#: Fraction of baseline fast-path throughput below which --baseline fails.
REGRESSION_FLOOR = 0.70


def _setup(shard_count: int = 8, plan_alternatives: bool = True):
    cluster = make_cluster(workers=2, shard_count=shard_count,
                           max_connections=2000)
    # CitusConfig is shared cluster-wide, so one assignment covers every node.
    cluster.coordinator_ext.config.enable_plan_alternatives = plan_alternatives
    session = cluster.coordinator_session()
    session.execute(
        "CREATE TABLE accounts (key int PRIMARY KEY, v int, filler text)"
    )
    session.execute("SELECT create_distributed_table('accounts', 'key')")
    rows = [[k, 0, f"filler-{k}"] for k in range(1, 201)]
    session.copy_rows("accounts", rows, ["key", "v", "filler"])
    return cluster, session


def bench_fast_path(session, iterations: int) -> dict:
    """Single-key SELECT/UPDATE pairs — the fast-path CRUD loop."""
    select_sql = "SELECT v FROM accounts WHERE key = :key"
    update_sql = "UPDATE accounts SET v = v + :d WHERE key = :key"
    # Warm-up: first execution pays parse + plan for each shape.
    session.execute(select_sql, {"key": 1})
    session.execute(update_sql, {"d": 0, "key": 1})
    start = time.perf_counter()
    for i in range(iterations):
        key = (i % 200) + 1
        session.execute(select_sql, {"key": key})
        session.execute(update_sql, {"d": 1, "key": key})
    elapsed = time.perf_counter() - start
    return {"statements": iterations * 2, "seconds": elapsed,
            "stmts_per_sec": iterations * 2 / elapsed}


def bench_router_txn(session, iterations: int) -> dict:
    """Single-shard-group transactions: BEGIN/UPDATE/SELECT/COMMIT."""
    update_sql = "UPDATE accounts SET v = v + :d WHERE key = :key"
    select_sql = "SELECT v FROM accounts WHERE key = :key"
    session.execute("BEGIN")
    session.execute(update_sql, {"d": 0, "key": 1})
    session.execute("COMMIT")
    start = time.perf_counter()
    for i in range(iterations):
        key = (i % 200) + 1
        session.execute("BEGIN")
        session.execute(update_sql, {"d": 1, "key": key})
        session.execute(select_sql, {"key": key})
        session.execute("COMMIT")
    elapsed = time.perf_counter() - start
    return {"statements": iterations * 4, "seconds": elapsed,
            "stmts_per_sec": iterations * 4 / elapsed,
            "txns_per_sec": iterations / elapsed}


def bench_pushdown_agg(session, iterations: int) -> dict:
    """Two-phase aggregation across all shards."""
    sql = "SELECT count(*), sum(v), avg(v) FROM accounts WHERE v >= :floor"
    session.execute(sql, {"floor": 0})
    start = time.perf_counter()
    for _ in range(iterations):
        session.execute(sql, {"floor": 0})
    elapsed = time.perf_counter() - start
    return {"statements": iterations, "seconds": elapsed,
            "stmts_per_sec": iterations / elapsed}


def run(quick: bool = False, plan_alternatives: bool = True) -> dict:
    fast_iters = 2000 if not quick else 400
    txn_iters = 500 if not quick else 100
    agg_iters = 200 if not quick else 50
    cluster, session = _setup(plan_alternatives=plan_alternatives)
    results = {
        "fast_path": bench_fast_path(session, fast_iters),
        "router_txn": bench_router_txn(session, txn_iters),
        "pushdown_agg": bench_pushdown_agg(session, agg_iters),
    }
    return {
        "config": {"workers": 2, "shard_count": 8, "quick": quick,
                   "plan_alternatives": plan_alternatives},
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke)")
    parser.add_argument("--out", help="write results JSON to this path")
    parser.add_argument("--baseline",
                        help="baseline JSON; fail on >30%% fast-path regression")
    parser.add_argument("--plan-alternatives", choices=("on", "off"),
                        default="on",
                        help="citus.enable_plan_alternatives for the run; the"
                        " CI gate checks the off-state stays within the same"
                        " hot-path budget")
    args = parser.parse_args(argv)

    report = run(quick=args.quick,
                 plan_alternatives=args.plan_alternatives == "on")
    for name, r in report["results"].items():
        print(f"{name:>14}: {r['stmts_per_sec']:>10.1f} stmts/sec"
              f"  ({r['statements']} statements in {r['seconds']:.2f}s)")

    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2)
        print(f"wrote {args.out}")

    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
        base = baseline["results"]["fast_path"]["stmts_per_sec"]
        now = report["results"]["fast_path"]["stmts_per_sec"]
        floor = base * REGRESSION_FLOOR
        print(f"fast_path: {now:.1f} vs baseline {base:.1f}"
              f" (floor {floor:.1f})")
        if now < floor:
            print("FAIL: fast-path throughput regressed more than 30%")
            return 1
        print("OK: within regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
