"""Ablation benches for the design choices DESIGN.md calls out.

1. **Planner cascade** — measure planning cost per tier: cheap queries must
   not pay the logical planner's overhead (the reason Citus iterates from
   cheapest to most expensive planner).
2. **Slow start** — adaptive executor with slow start on vs. effectively
   off (huge step): connection counts for fast statements.
3. **Broadcast vs. repartition join** — the join-order planner's network
   cost decision as the moved table's size crosses the broadcast threshold.
4. **Deadlock detection vs. wound-wait** — modeled restart cost of
   wound-wait at TPC-C-like contention vs. the measured cost of detection
   (§3.7.3's argument for why Citus chose detection).
"""

import pytest

from repro import make_cluster
from repro.citus.planner.distributed import plan_statement
from repro.sql import parse_one

from .common import write_report


@pytest.fixture(scope="module")
def planner_cluster():
    citus = make_cluster(workers=2, shard_count=8)
    s = citus.coordinator_session()
    s.execute("CREATE TABLE a (k int PRIMARY KEY, v int, tag text)")
    s.execute("SELECT create_distributed_table('a', 'k')")
    s.execute("CREATE TABLE b (k int PRIMARY KEY, w int)")
    s.execute("SELECT create_distributed_table('b', 'k', colocate_with := 'a')")
    s.copy_rows("a", [[i, i, "t"] for i in range(40)])
    s.copy_rows("b", [[i, i * 2] for i in range(40)])
    return citus, s


PLANNER_QUERIES = {
    "fast-path": "SELECT * FROM a WHERE k = 7",
    "router": "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k WHERE a.k = 7",
    "pushdown-concat": "SELECT k, v FROM a WHERE v > 3",
    "pushdown-merge": "SELECT tag, sum(v), avg(v) FROM a GROUP BY tag",
}


@pytest.mark.parametrize("tier", list(PLANNER_QUERIES))
def bench_ablation_planner_tier_cost(benchmark, planner_cluster, tier):
    """Planning-only cost per cascade tier (no execution)."""
    benchmark.group = "ablation-planner-cascade"
    citus, s = planner_cluster
    ext = citus.coordinator_ext
    stmt = parse_one(PLANNER_QUERIES[tier])
    benchmark.pedantic(
        lambda: plan_statement(ext, s, stmt, None), rounds=20, iterations=5
    )


def bench_ablation_planner_cascade_report(benchmark, planner_cluster):
    """The cascade's point: cheap queries avoid expensive planning."""
    import time

    benchmark.group = "ablation-planner-cascade"
    citus, s = planner_cluster
    ext = citus.coordinator_ext

    def measure():
        costs = {}
        for tier, sql in PLANNER_QUERIES.items():
            stmt = parse_one(sql)
            start = time.perf_counter()
            for _ in range(100):
                plan_statement(ext, s, stmt, None)
            costs[tier] = (time.perf_counter() - start) / 100 * 1e6
        return costs

    costs = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["== Ablation: planner cascade (planning cost per tier, µs) ==", ""]
    for tier, us in costs.items():
        lines.append(f"  {tier:<18} {us:8.1f} µs")
    lines.append("")
    lines.append("Fast path / router stay well below the multi-shard planners,")
    lines.append("which is why the cascade tries them first (§3.5).")
    write_report("ablation_planners", "\n".join(lines))
    assert costs["fast-path"] < costs["pushdown-merge"]


def bench_ablation_slow_start(benchmark):
    """Slow start on vs. off: connections opened for a fast multi-task
    statement (off = step interval ~0: opens one connection per task)."""
    benchmark.group = "ablation-slow-start"

    def run(interval_ms):
        citus = make_cluster(workers=2, shard_count=16)
        citus.coordinator_ext.config.executor_slow_start_interval_ms = interval_ms
        citus.coordinator_ext.executor.slow_start_interval = interval_ms / 1000.0
        s = citus.coordinator_session()
        s.execute("CREATE TABLE t (k int PRIMARY KEY)")
        s.execute("SELECT create_distributed_table('t', 'k')")
        s.copy_rows("t", [[i] for i in range(32)])
        s.stats.clear()
        s.execute("SELECT count(*) FROM t")
        return citus.coordinator_ext.executor.last_report

    def both():
        return run(10.0), run(0.0001)

    with_slow_start, without = benchmark.pedantic(both, rounds=1, iterations=1)
    lines = [
        "== Ablation: adaptive executor slow start ==",
        "",
        f"  slow start ON  (10ms step): {with_slow_start.connections_used} connections"
        f" for {with_slow_start.task_count} tasks",
        f"  slow start OFF (~0ms step): {without.connections_used} connections"
        f" for {without.task_count} tasks",
        "",
        "Without slow start, every fast statement pays connection-per-task",
        "establishment; with it, sub-10ms tasks share one connection per",
        "worker (§3.6.1).",
    ]
    write_report("ablation_slowstart", "\n".join(lines))
    assert with_slow_start.connections_used < without.connections_used


def bench_ablation_join_strategy_crossover(benchmark):
    """Broadcast vs. repartition: the planner must flip to repartition once
    the moved table is large enough that size × nodes > size."""
    benchmark.group = "ablation-joins"

    def run():
        from repro.citus.planner.join_order import plan_join_order
        from repro.citus.sharding import analyze_statement

        citus = make_cluster(workers=4, shard_count=8)
        s = citus.coordinator_session()
        s.execute("CREATE TABLE big (k int PRIMARY KEY, r int)")
        s.execute("SELECT create_distributed_table('big', 'k')")
        s.execute("CREATE TABLE dim (d int PRIMARY KEY, note text)")
        s.execute("SELECT create_distributed_table('dim', 'd', colocate_with := 'none')")
        s.copy_rows("big", [[i, i % 20] for i in range(400)])
        ext = citus.coordinator_ext
        sql = "SELECT count(*) FROM big JOIN dim ON big.r = dim.d"
        stmt = parse_one(sql)
        choices = {}
        for dim_rows, label in ((10, "small dim"), (3000, "large dim")):
            s.execute("TRUNCATE TABLE dim")
            s.copy_rows("dim", [[i, "x" * 50] for i in range(dim_rows)])
            analysis = analyze_statement(stmt, ext.metadata.cache, None,
                                         ext.instance.catalog)
            plan = plan_join_order(ext, stmt, None, analysis)
            choices[label] = (plan.strategy, plan.moved.name,
                              int(plan.estimated_network_bytes))
            result = s.execute(sql)
            assert result.rows
        return choices

    choices = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== Ablation: broadcast vs repartition join selection ==", ""]
    for label, (strategy, moved, cost) in choices.items():
        lines.append(f"  {label:<10} -> {strategy:<12} (moves {moved},"
                     f" est. network bytes {cost:,})")
    lines.append("")
    lines.append("The join-order planner picks the strategy minimizing network")
    lines.append("traffic (§3.5): broadcast while the moved table is small,")
    lines.append("repartition (or moving the other side) once it grows.")
    write_report("ablation_joins", "\n".join(lines))
    assert choices["small dim"][0] == "broadcast"
    assert choices["large dim"] != choices["small dim"]


def bench_ablation_deadlock_vs_wound_wait(benchmark):
    """§3.7.3: wound-wait restarts a fraction of all conflicting
    transactions; detection only aborts actual deadlock participants.
    Measure conflict frequency in a hot-row workload and compare the
    implied abort counts."""
    benchmark.group = "ablation-deadlock"

    def run():
        from repro.errors import LockTimeout

        citus = make_cluster(workers=2, shard_count=8)
        sessions = [citus.coordinator_session(f"c{i}") for i in range(4)]
        setup = sessions[0]
        setup.execute("CREATE TABLE hot (k int PRIMARY KEY, v int)")
        setup.execute("SELECT create_distributed_table('hot', 'k')")
        setup.copy_rows("hot", [[i, 0] for i in range(4)])
        conflicts = 0
        operations = 120
        import random

        rng = random.Random(5)
        for i in range(operations):
            a, b = rng.sample(sessions, 2)
            key = rng.randrange(4)
            a.execute("BEGIN")
            a.execute("UPDATE hot SET v = v + 1 WHERE k = $1", [key])
            try:
                b.execute("UPDATE hot SET v = v + 1 WHERE k = $1", [key])
                conflicts += 1  # wound-wait would restart one of the two
            except LockTimeout:
                conflicts += 1
            a.execute("COMMIT")
        deadlocks = citus.coordinator_ext.stats.get("distributed_deadlocks", 0)
        return operations, conflicts, deadlocks

    operations, conflicts, deadlocks = benchmark.pedantic(run, rounds=1, iterations=1)
    wound_wait_aborts = conflicts  # wound-wait kills on every conflict
    detection_aborts = deadlocks  # detection kills only real cycles
    lines = [
        "== Ablation: deadlock detection vs wound-wait ==",
        "",
        f"  operations:                     {operations}",
        f"  lock conflicts observed:        {conflicts}",
        f"  wound-wait implied aborts:      {wound_wait_aborts}"
        " (every conflict wounds a txn)",
        f"  detection aborts (real cycles): {detection_aborts}",
        "",
        "PostgreSQL's interactive protocol cannot silently retry wounded",
        "transactions, so Citus uses detection: only genuine cycles abort",
        "(§3.7.3).",
    ]
    write_report("ablation_deadlock", "\n".join(lines))
    assert detection_aborts <= wound_wait_aborts
