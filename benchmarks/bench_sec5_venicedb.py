"""§5 case study — VeniceDB (Windows telemetry / RQV dashboard).

The paper lists concrete requirements for the petabyte-scale deployment:

- sub-second p95 for >6M queries/day,
- ingest ~10 TB/day, visible within 20 minutes,
- nested subqueries with high-cardinality GROUP BY (per-device grain),
- incremental aggregation via co-located INSERT..SELECT,
- atomic cross-node updates to cleanse bad data.

The functional bench runs the whole pipeline (COPY → co-located rollup →
the RQV two-level query → cross-node cleanse) on a simulated cluster; the
model scales two >1000-core clusters and checks each requirement.
"""

import pytest

from repro import make_cluster

from .common import write_report

SCHEMA = """
CREATE TABLE measures (
    device_id int,
    ts int,
    build text,
    metric float,
    PRIMARY KEY (device_id, ts)
);
"""

ROLLUP = """
CREATE TABLE reports (
    device_id int,
    build text,
    day int,
    device_avg float,
    samples int,
    PRIMARY KEY (device_id, build, day)
);
"""

# The §5 query shape: inner GROUP BY device (distribution column) pushes
# down; the outer average-of-averages is split partial/merge.
RQV_QUERY = """
SELECT build, avg(device_avg)
FROM (
    SELECT device_id, build, avg(metric) AS device_avg
    FROM measures
    GROUP BY device_id, build
) AS subq
GROUP BY build
ORDER BY build
"""

TRANSFORM = """
INSERT INTO reports (device_id, build, day, device_avg, samples)
SELECT device_id, build, ts / 100, avg(metric), count(*)
FROM measures
GROUP BY device_id, build, ts / 100
"""


def build_pipeline():
    citus = make_cluster(workers=4, shard_count=16)
    s = citus.coordinator_session()
    s.execute(SCHEMA)
    s.execute("SELECT create_distributed_table('measures', 'device_id')")
    s.execute(ROLLUP)
    s.execute("SELECT create_distributed_table('reports', 'device_id',"
              " colocate_with := 'measures')")
    rows = [
        [device, ts, f"build-{device % 3}", float((device * ts) % 50)]
        for device in range(1, 41)
        for ts in range(1, 6)
    ]
    s.copy_rows("measures", rows)
    return citus, s, rows


def bench_sec5_ingest_and_rollup(benchmark):
    benchmark.group = "sec5-venicedb"

    def run():
        citus, s, rows = build_pipeline()
        result = s.execute(TRANSFORM)
        assert result.rowcount > 0
        return citus, s

    benchmark.pedantic(run, rounds=2, iterations=1)


def bench_sec5_rqv_query(benchmark):
    benchmark.group = "sec5-venicedb"
    citus, s, rows = build_pipeline()

    def query():
        out = s.execute(RQV_QUERY).rows
        assert len(out) == 3  # three builds
        return out

    result = benchmark.pedantic(query, rounds=3, iterations=1)
    # Validate average-of-device-averages against a direct computation.
    from collections import defaultdict

    per_device = defaultdict(list)
    for device, _ts, build, metric in rows:
        per_device[(device, build)].append(metric)
    builds = defaultdict(list)
    for (device, build), metrics in per_device.items():
        builds[build].append(sum(metrics) / len(metrics))
    for build, avg_value in result:
        expected = sum(builds[build]) / len(builds[build])
        assert avg_value == pytest.approx(expected)


def bench_sec5_atomic_cleanse(benchmark):
    """'Atomic updates across nodes to cleanse bad data': a multi-shard
    DELETE commits via 2PC or not at all."""
    benchmark.group = "sec5-venicedb"

    def run():
        citus, s, rows = build_pipeline()
        bad = s.execute("DELETE FROM measures WHERE metric > 40")
        remaining = s.execute("SELECT count(*) FROM measures").scalar()
        assert remaining == len(rows) - bad.rowcount
        assert s.stats.get("citus_2pc_commits", 0) >= 1
        return bad.rowcount

    benchmark.pedantic(run, rounds=2, iterations=1)


def bench_sec5_requirements_report(benchmark):
    """Model the §5 requirements at VeniceDB scale: two >1000-core
    clusters, ~10 TB/day ingest, >6M queries/day sub-second p95."""
    benchmark.group = "sec5-venicedb"

    def model():
        cores_per_node = 16
        nodes = 64  # >1000 cores per cluster
        clusters = 2
        # Ingest: distributed COPY parallelized across nodes; per-core JSON
        # ingest ~3 MB/s with index maintenance (Fig 7a calibration).
        ingest_bytes_per_s = clusters * nodes * cores_per_node * 0.5 * 3e6
        ingest_tb_per_day = ingest_bytes_per_s * 86400 / 1e12
        # Freshness: rollup INSERT..SELECT is co-located (strategy 1); a
        # 20-minute batch is bounded by per-node scan of the new data.
        batch_bytes = 10e12 / (24 * 3)  # 20-minute slice of 10TB/day
        freshness_s = batch_bytes / (nodes * clusters) / 12e6 + 60
        # Query p95: pushdown to 16 parallel shards per query over indexed
        # rollups; per-task index scan ~15ms + merge.
        p95_ms = 15 + 0.5 * 16 + 30
        queries_per_day_capacity = clusters * nodes * cores_per_node * (
            1000 / p95_ms
        ) * 86400 * 0.01  # 1% duty cycle reserved for dashboards
        return {
            "ingest_tb_per_day": ingest_tb_per_day,
            "freshness_s": freshness_s,
            "p95_ms": p95_ms,
            "query_capacity_per_day": queries_per_day_capacity,
        }

    m = benchmark.pedantic(model, rounds=1, iterations=1)
    checks = [
        ("ingest ~10 TB/day", f"{m['ingest_tb_per_day']:.1f} TB/day modeled",
         m["ingest_tb_per_day"] >= 10),
        ("visible within 20 minutes", f"{m['freshness_s'] / 60:.1f} min modeled",
         m["freshness_s"] <= 20 * 60),
        ("sub-second p95", f"{m['p95_ms']:.0f} ms modeled", m["p95_ms"] < 1000),
        (">6M queries/day", f"{m['query_capacity_per_day'] / 1e6:.1f}M/day capacity",
         m["query_capacity_per_day"] >= 6e6),
    ]
    lines = ["== §5 VeniceDB requirements vs model (2 clusters × 64 nodes) ==", ""]
    for requirement, measured, ok in checks:
        lines.append(f"  [{'OK ' if ok else 'MISS'}] {requirement:<28} {measured}")
    lines += [
        "",
        "Functional pipeline (reduced scale) verified by the sibling benches:",
        "  COPY ingest -> co-located INSERT..SELECT rollup -> pushdown of the",
        "  per-device inner GROUP BY -> partial/merge outer aggregation ->",
        "  atomic multi-shard cleanse via 2PC.",
    ]
    write_report("sec5_venicedb", "\n".join(lines))
    assert all(ok for _r, _m, ok in checks)
