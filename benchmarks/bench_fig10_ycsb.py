"""Figure 10 — YCSB workload A, high-performance CRUD (§4.3).

Functional run on each setup (including the paper's every-node-a-
coordinator configuration with client load balancing) plus the model
report at 100M rows / 256 threads.
"""

import pytest

from repro import make_cluster
from repro.perf import model
from repro.workloads import ycsb

from .common import make_setup, paper_vs_model_table, write_report

MINI = ycsb.YcsbConfig(records=150)
OPS = 100
SETUPS = ["PostgreSQL", "Citus 0+1", "Citus 4+1", "Citus 8+1"]


def run_ycsb(label: str) -> ycsb.YcsbStats:
    session, distributed = make_setup(label)
    ycsb.create_schema(session, distributed=distributed)
    ycsb.load_data(session, MINI)
    stats = ycsb.YcsbDriver(session, MINI).run(OPS)
    assert stats.operations == OPS and stats.read_misses == 0
    return stats


@pytest.mark.parametrize("label", SETUPS)
def bench_fig10_workload_a(benchmark, label):
    benchmark.group = "fig10-ycsb"
    benchmark.pedantic(run_ycsb, args=(label,), rounds=2, iterations=1)


def bench_fig10_every_node_coordinator(benchmark):
    """The paper's actual Fig.10 configuration: metadata synced to all
    workers, YCSB clients load-balanced across them."""
    benchmark.group = "fig10-ycsb"

    def run():
        citus = make_cluster(workers=4, shard_count=16)
        session = citus.coordinator_session()
        ycsb.create_schema(session)
        ycsb.load_data(session, MINI)
        citus.enable_metadata_sync()
        sessions = [citus.session_on(name) for name in citus.worker_names()]
        stats = ycsb.YcsbDriver(sessions, MINI).run(OPS)
        assert stats.operations == OPS and stats.read_misses == 0
        return stats

    benchmark.pedantic(run, rounds=2, iterations=1)


def bench_fig10_model_report(benchmark):
    benchmark.group = "fig10-ycsb"
    rows = benchmark.pedantic(model.figure10, rounds=1, iterations=1)
    text = paper_vs_model_table(
        "Figure 10: YCSB workload A, 100M rows (~100GB), 256 threads — ops/s",
        [
            "I/O bound: throughput scales linearly with added disk capacity",
            "Single-server Citus slightly worse than PostgreSQL (planning overhead)",
            "Small extra speedup at 4+1 from the working set fitting in memory",
        ],
        rows, "throughput", "ops/s",
    )
    write_report("fig10_ycsb", text)
    by = {r.setup: r.value for r in rows}
    assert by["Citus 0+1"] < by["PostgreSQL"]
    assert 1.8 <= by["Citus 8+1"] / by["Citus 4+1"] <= 2.2
