"""Active Session History sampling overhead benchmark.

Runs the router-transaction hot path (BEGIN / UPDATE / SELECT / COMMIT on
a single distribution key, the same shape as ``bench_hotpath``'s
``router_txn``) under three ASH modes on identical fresh clusters:

- **detached** — the cluster is created with ``citus.enable_ash`` off, so
  no sampler object ever exists and the clock has no observers (the
  uninstrumented baseline);
- **off** — ASH is enabled at install and then disabled through
  ``citus_set_config``, exactly how a production operator would turn it
  off: the clock observer must be detached, leaving every advance one
  empty-list test away from the baseline;
- **on** — full cluster-wide session sampling at an aggressive 10ms
  virtual interval (the 1s default samples far less often; this gate
  times the worst case where nearly every statement crosses a boundary).

Tracing and the txn graph are detached in all modes so this isolates the
sampler. CI gates, judged by the median of per-round throughput ratios
against the detached baseline (modes timed back-to-back per round, GC
parked):

- ``off`` within 5% of detached (zero-cost-when-off);
- ``on`` within 10% of detached.

Usage::

    PYTHONPATH=src python benchmarks/bench_ash.py [--quick]
        [--out results.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import make_cluster  # noqa: E402
from repro.citus.extension import CitusConfig  # noqa: E402

#: Budgets (overridable for CI tuning, like TXNGRAPH_*_BUDGET).
OFF_BUDGET = float(os.environ.get("ASH_OFF_BUDGET", "0.05"))
ON_BUDGET = float(os.environ.get("ASH_ON_BUDGET", "0.10"))

#: Virtual seconds between samples — deliberately far below the 1s
#: default so the timed loop crosses a boundary every few statements.
SAMPLING_INTERVAL = 0.01

#: Independently allocated clusters per mode, rotated across rounds.
_CLUSTERS_PER_MODE = 3

_MODES = ("detached", "off", "on")


def _setup(mode: str):
    config = CitusConfig(
        # Isolate the sampler: the co-access graph has its own gate
        # (bench_txngraph) and would otherwise dominate the deltas.
        enable_txn_graph=False,
        ash_sampling_interval=SAMPLING_INTERVAL,
    )
    if mode == "detached":
        config.enable_ash = False
    cluster = make_cluster(workers=2, shard_count=8, max_connections=2000,
                           config=config)
    session = cluster.coordinator_session()
    session.execute(
        "CREATE TABLE accounts (key int PRIMARY KEY, v int, filler text)"
    )
    session.execute("SELECT create_distributed_table('accounts', 'key')")
    session.copy_rows(
        "accounts", [[k, 0, f"filler-{k}"] for k in range(1, 201)],
        ["key", "v", "filler"],
    )
    # Detach tracing everywhere: bench_tracing covers span collection.
    for ext in cluster.extensions.values():
        ext.tracer = None
    for node in cluster.cluster.nodes.values():
        node.tracer = None
    if mode == "off":
        session.execute(
            "SELECT citus_set_config('enable_ash', :v)", {"v": False}
        )
    elif mode not in ("on", "detached"):
        raise ValueError(mode)
    return cluster, session


def _txn_loop(session, iterations: int) -> float:
    """The router-transaction workload; returns statements/sec."""
    update_sql = "UPDATE accounts SET v = v + :d WHERE key = :key"
    select_sql = "SELECT v FROM accounts WHERE key = :key"
    start = time.perf_counter()
    for i in range(iterations):
        key = (i % 200) + 1
        session.execute("BEGIN")
        session.execute(update_sql, {"d": 1, "key": key})
        session.execute(select_sql, {"key": key})
        session.execute("COMMIT")
    return iterations * 4 / (time.perf_counter() - start)


def _measure_rounds(setups, iterations, trials, rates) -> dict:
    """Run ``trials`` interleaved rounds (rotating the cluster set, all
    modes timed back-to-back in alternating order, GC parked); returns
    per-round overhead ratios against the detached baseline, keyed by
    instrumented mode, and appends per-mode rates into ``rates``."""
    overheads = {"off": [], "on": []}
    gc_was_enabled = gc.isenabled()
    try:
        for trial in range(trials):
            order = _MODES if trial % 2 == 0 else _MODES[::-1]
            pick = trial % _CLUSTERS_PER_MODE
            rate = {}
            for mode in order:
                gc.collect()
                gc.disable()
                rate[mode] = _txn_loop(setups[mode][pick][1], iterations)
                if gc_was_enabled:
                    gc.enable()
            for mode in ("off", "on"):
                overheads[mode].append(1.0 - rate[mode] / rate["detached"])
            for mode in _MODES:
                rates[mode].append(rate[mode])
    finally:
        if gc_was_enabled:
            gc.enable()
    return overheads


def run(quick: bool = False) -> dict:
    # Many short rounds beat few long ones (see bench_waitevents): the
    # median of per-round ratios is what shrinks with the round count.
    iterations = 200 if quick else 500
    trials = 25 if quick else 31
    setups = {mode: [_setup(mode) for _ in range(_CLUSTERS_PER_MODE)]
              for mode in _MODES}
    for mode in _MODES:
        for setup in setups[mode]:
            _txn_loop(setup[1], max(iterations // 5, 20))
    rates = {mode: [] for mode in _MODES}
    overheads = _measure_rounds(setups, iterations, trials, rates)
    budgets = {"off": OFF_BUDGET, "on": ON_BUDGET}
    medians = {mode: statistics.median(overheads[mode])
               for mode in ("off", "on")}
    confirmed = False
    if any(medians[mode] > budgets[mode] for mode in medians):
        print("over budget at "
              + ", ".join(f"{m}={medians[m] * 100:+.2f}%" for m in medians)
              + "; running confirmation pass")
        extra = _measure_rounds(setups, iterations, trials, rates)
        for mode in overheads:
            overheads[mode] += extra[mode]
        medians = {mode: statistics.median(overheads[mode])
                   for mode in ("off", "on")}
        confirmed = True
    results = {}
    for mode in _MODES:
        best = max(rates[mode])
        results[mode] = {"mode": mode, "stmts_per_sec": best}
        print(f"{mode:>8}: {best:>10.1f} stmts/sec (best of {len(rates[mode])})")
    for mode in ("off", "on"):
        print(f"ash overhead ({mode} vs detached):"
              f" {medians[mode] * 100:+6.2f}%"
              f" (budget {budgets[mode] * 100:.0f}%)")
    # Sanity: the sampling clusters really did sample (and the flamegraph
    # reconciles with the ring), and the disabled ones really pay nothing.
    for cluster, session in setups["on"]:
        samples = session.execute("SELECT citus_ash()").scalar()
        flamegraph = session.execute("SELECT citus_ash('flamegraph')").scalar()
        if not samples:
            raise AssertionError("sampling run recorded no ASH samples")
        counted = sum(int(line.rsplit(" ", 1)[1])
                      for line in flamegraph.splitlines())
        if counted != len(samples):
            raise AssertionError(
                f"flamegraph counts ({counted}) != ring samples"
                f" ({len(samples)})"
            )
    for mode in ("detached", "off"):
        for cluster, _ in setups[mode]:
            if cluster.coordinator_ext.ash is not None:
                raise AssertionError(f"{mode} cluster still has a sampler")
            if cluster.cluster.clock._observers:
                raise AssertionError(
                    f"{mode} cluster still has clock observers attached"
                )
    return {
        "config": {"iterations": iterations, "trials": trials, "quick": quick,
                   "sampling_interval": SAMPLING_INTERVAL},
        "results": results,
        "overhead": medians,
        "round_overheads": overheads,
        "budgets": budgets,
        "confirmation_pass": confirmed,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke)")
    parser.add_argument("--out", help="write results JSON to this path")
    args = parser.parse_args(argv)

    report = run(quick=args.quick)

    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2)
        print(f"wrote {args.out}")

    failed = False
    for mode, budget in report["budgets"].items():
        if report["overhead"][mode] > budget:
            print(f"FAIL: ash overhead ({mode}) exceeds {budget * 100:.0f}%")
            failed = True
    if failed:
        return 1
    print("OK: ash sampling overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
